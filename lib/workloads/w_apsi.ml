(* 141.apsi analogue: mesoscale atmosphere model.

   Structural features mirrored: a vertical-column diffusion loop with a
   carried dependence (tridiagonal-like forward sweep), a horizontal
   advection loop that is fully parallel, and boundary conditionals —
   apsi's mix of serial columns and parallel planes. *)

open Ir.Builder
open Util

let nx = 24
let nz = 12
let steps = 3

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let temp = data_floats pb (floats ~seed:(0xA51 + input_salt) ~n:(nx * nz)) in
  let wind = data_floats pb (floats ~seed:(0xA52 + input_salt) ~n:(nx * nz)) in
  let work = alloc pb (nx * nz) in
  let r_t = t0 in
  let r_x = t1 in
  let r_z = t2 in
  let r_idx = t3 in
  let r_a = t4 in
  let r_c = t5 in
  let f k = Ir.Reg.tmp (16 + k) in
  func pb "main" (fun b ->
      for_ b r_t ~from:(imm 0) ~below:(imm steps) ~step:1 (fun b ->
          (* vertical diffusion: serial in z per column *)
          for_ b r_x ~from:(imm 0) ~below:(imm nx) ~step:1 (fun b ->
              lf b (f 0) 0.0;
              for_ b r_z ~from:(imm 0) ~below:(imm nz) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_z (imm nx);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_x);
                  addi b r_a r_idx temp;
                  load b (f 1) r_a 0;
                  lf b (f 2) 0.7;
                  fbin b Ir.Insn.Fmul (f 1) (f 1) (f 2);
                  lf b (f 2) 0.3;
                  fbin b Ir.Insn.Fmul (f 3) (f 0) (f 2);
                  fbin b Ir.Insn.Fadd (f 1) (f 1) (f 3);
                  store b (f 1) r_a 0;
                  fbin b Ir.Insn.Fadd (f 0) (f 1) (f 1);
                  lf b (f 2) 0.5;
                  fbin b Ir.Insn.Fmul (f 0) (f 0) (f 2)));
          (* horizontal advection: parallel in x, upwind conditional *)
          for_ b r_z ~from:(imm 0) ~below:(imm nz) ~step:1 (fun b ->
              for_ b r_x ~from:(imm 1) ~below:(imm (nx - 1)) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_z (imm nx);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_x);
                  addi b r_a r_idx wind;
                  load b (f 0) r_a 0;
                  lf b (f 1) 0.0;
                  fcmp b Ir.Insn.Flt r_c (f 0) (f 1);
                  addi b r_a r_idx temp;
                  if_ b r_c
                    (fun b -> load b (f 2) r_a 1)
                    (fun b -> load b (f 2) r_a (-1));
                  load b (f 3) r_a 0;
                  fbin b Ir.Insn.Fsub (f 2) (f 2) (f 3);
                  lf b (f 4) 0.1;
                  fbin b Ir.Insn.Fmul (f 2) (f 2) (f 4);
                  funop b Ir.Insn.Fabs (f 5) (f 0);
                  fbin b Ir.Insn.Fmul (f 2) (f 2) (f 5);
                  fbin b Ir.Insn.Fadd (f 3) (f 3) (f 2);
                  bin b Ir.Insn.Mul r_idx r_z (imm nx);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_x);
                  addi b r_a r_idx work;
                  store b (f 3) r_a 0));
          (* copy work back into temp *)
          for_ b r_idx ~from:(imm 0) ~below:(imm (nx * nz)) ~step:1 (fun b ->
              addi b r_a r_idx work;
              load b (f 0) r_a 0;
              addi b r_a r_idx temp;
              store b (f 0) r_a 0));
      lf b (f 0) 0.0;
      for_ b r_idx ~from:(imm 0) ~below:(imm (nx * nz)) ~step:1 (fun b ->
          addi b r_a r_idx temp;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 1000.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "apsi";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "atmosphere columns and advection (141.apsi)";
  }
