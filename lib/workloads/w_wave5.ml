(* 146.wave5 analogue: particle-in-cell plasma simulation.

   Structural features mirrored: a particle push loop with gathered field
   reads (indexed by particle position), fp position/velocity updates, a
   scatter of charge back onto the grid (read-modify-write with potential
   cross-task memory dependences), and periodic boundary conditionals. *)

open Ir.Builder
open Util

let grid = 64
let particles = 400
let steps = 4

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let px = data_floats pb (List.map (fun v -> v *. float_of_int grid)
                             (floats ~seed:(0x3A51 + input_salt) ~n:particles)) in
  let pv = data_floats pb (floats ~seed:(0x3A52 + input_salt) ~n:particles) in
  let efield = data_floats pb (floats ~seed:(0x3A53 + input_salt) ~n:grid) in
  let charge = alloc pb grid in
  let r_t = t0 in
  let r_p = t1 in
  let r_cell = t2 in
  let r_a = t3 in
  let r_c = t4 in
  let f k = Ir.Reg.tmp (16 + k) in
  func pb "main" (fun b ->
      for_ b r_t ~from:(imm 0) ~below:(imm steps) ~step:1 (fun b ->
          (* push phase *)
          for_ b r_p ~from:(imm 0) ~below:(imm particles) ~step:1 (fun b ->
              addi b r_a r_p px;
              load b (f 0) r_a 0;
              addi b r_a r_p pv;
              load b (f 1) r_a 0;
              (* cell index = int(x) mod grid *)
              funop b Ir.Insn.Ftoi r_cell (f 0);
              bin b Ir.Insn.Rem r_cell r_cell (imm grid);
              bin b Ir.Insn.Lt r_c r_cell (imm 0);
              when_ b r_c (fun b -> addi b r_cell r_cell grid);
              (* gather field with linear interpolation between the two
                 neighbouring grid points, then a leapfrog kick and drift —
                 a long straight-line fp block, as in the original's particle
                 pusher *)
              addi b r_a r_cell efield;
              load b (f 2) r_a 0;
              bin b Ir.Insn.Lt r_c r_cell (imm (grid - 1));
              if_ b r_c
                (fun b -> load b (f 8) r_a 1)
                (fun b -> load b (f 8) r_a (- (grid - 1)));
              funop b Ir.Insn.Itof (f 9) r_cell;
              fbin b Ir.Insn.Fsub (f 9) (f 0) (f 9);
              fbin b Ir.Insn.Fsub (f 10) (f 8) (f 2);
              fbin b Ir.Insn.Fmul (f 10) (f 10) (f 9);
              fbin b Ir.Insn.Fadd (f 2) (f 2) (f 10);
              lf b (f 3) 0.1;
              fbin b Ir.Insn.Fmul (f 2) (f 2) (f 3);
              fbin b Ir.Insn.Fadd (f 1) (f 1) (f 2);
              (* relativistic-style damping of the velocity *)
              fbin b Ir.Insn.Fmul (f 11) (f 1) (f 1);
              lf b (f 12) 4.0;
              fbin b Ir.Insn.Fadd (f 11) (f 11) (f 12);
              fbin b Ir.Insn.Fdiv (f 11) (f 12) (f 11);
              fbin b Ir.Insn.Fmul (f 1) (f 1) (f 11);
              fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1);
              (* periodic boundary *)
              lf b (f 4) 0.0;
              fcmp b Ir.Insn.Flt r_c (f 0) (f 4);
              when_ b r_c (fun b ->
                  lf b (f 5) (float_of_int grid);
                  fbin b Ir.Insn.Fadd (f 0) (f 0) (f 5));
              lf b (f 5) (float_of_int grid);
              fcmp b Ir.Insn.Fle r_c (f 5) (f 0);
              when_ b r_c (fun b -> fbin b Ir.Insn.Fsub (f 0) (f 0) (f 5));
              addi b r_a r_p px;
              store b (f 0) r_a 0;
              addi b r_a r_p pv;
              store b (f 1) r_a 0;
              (* scatter charge (read-modify-write on the grid) *)
              funop b Ir.Insn.Ftoi r_cell (f 0);
              bin b Ir.Insn.Rem r_cell r_cell (imm grid);
              bin b Ir.Insn.Lt r_c r_cell (imm 0);
              when_ b r_c (fun b -> addi b r_cell r_cell grid);
              addi b r_a r_cell charge;
              load b (f 6) r_a 0;
              lf b (f 7) 1.0;
              fbin b Ir.Insn.Fadd (f 6) (f 6) (f 7);
              store b (f 6) r_a 0);
          (* field relaxation from accumulated charge *)
          for_ b r_cell ~from:(imm 0) ~below:(imm grid) ~step:1 (fun b ->
              addi b r_a r_cell charge;
              load b (f 0) r_a 0;
              addi b r_a r_cell efield;
              load b (f 1) r_a 0;
              lf b (f 2) 0.01;
              fbin b Ir.Insn.Fmul (f 0) (f 0) (f 2);
              fbin b Ir.Insn.Fadd (f 1) (f 1) (f 0);
              lf b (f 3) 0.99;
              fbin b Ir.Insn.Fmul (f 1) (f 1) (f 3);
              store b (f 1) r_a 0;
              (* reset charge for the next step *)
              lf b (f 4) 0.0;
              addi b r_a r_cell charge;
              store b (f 4) r_a 0));
      (* checksum over particle positions *)
      lf b (f 0) 0.0;
      for_ b r_p ~from:(imm 0) ~below:(imm particles) ~step:1 (fun b ->
          addi b r_a r_p px;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 100.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "wave5";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "particle-in-cell push/scatter loop (146.wave5)";
  }
