(* Workload registry: entry type for the synthetic SPEC95 suite (see Suite
   for the list). *)

type kind = [ `Int | `Fp ]

type entry = {
  name : string;
  kind : kind;
  build : unit -> Ir.Prog.t;
  build_alt : unit -> Ir.Prog.t;
      (* the same program structure over an alternative input (different
         data seeds): used for cross-input profile-robustness studies *)
  description : string;
}

let kind_name = function `Int -> "int" | `Fp -> "fp"
