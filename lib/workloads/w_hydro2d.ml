(* 104.hydro2d analogue: Navier-Stokes hydrodynamics on a 2-D grid.

   Structural features mirrored: stencil loops whose bodies are *smaller*
   than the other fp codes and contain boundary/limiter conditionals (the
   paper notes hydro2d's basic blocks are under 20 instructions, unlike the
   other fp benchmarks). *)

open Ir.Builder
open Util

let n = 20
let steps = 4

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let rho = data_floats pb (floats ~seed:(0xA1D0 + input_salt) ~n:(n * n)) in
  let mom = data_floats pb (floats ~seed:(0xA1D1 + input_salt) ~n:(n * n)) in
  let flux = alloc pb (n * n) in
  let r_t = t0 in
  let r_j = t1 in
  let r_i = t2 in
  let r_idx = t3 in
  let r_a = t4 in
  let r_c = t5 in
  let f k = Ir.Reg.tmp (16 + k) in
  func pb "main" (fun b ->
      for_ b r_t ~from:(imm 0) ~below:(imm steps) ~step:1 (fun b ->
          (* flux with a limiter conditional *)
          for_ b r_j ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
              for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_j (imm n);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                  addi b r_a r_idx rho;
                  load b (f 0) r_a 0;
                  load b (f 1) r_a 1;
                  fbin b Ir.Insn.Fsub (f 2) (f 1) (f 0);
                  (* limiter: clamp negative gradients *)
                  lf b (f 3) 0.0;
                  fcmp b Ir.Insn.Flt r_c (f 2) (f 3);
                  if_ b r_c
                    (fun b -> lf b (f 2) 0.0)
                    (fun b ->
                      addi b r_a r_idx mom;
                      load b (f 4) r_a 0;
                      fbin b Ir.Insn.Fmul (f 2) (f 2) (f 4));
                  addi b r_a r_idx flux;
                  store b (f 2) r_a 0));
          (* advance density *)
          for_ b r_j ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
              for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_j (imm n);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                  addi b r_a r_idx flux;
                  load b (f 0) r_a 0;
                  load b (f 1) r_a (-1);
                  fbin b Ir.Insn.Fsub (f 2) (f 0) (f 1);
                  lf b (f 3) 0.05;
                  fbin b Ir.Insn.Fmul (f 2) (f 2) (f 3);
                  addi b r_a r_idx rho;
                  load b (f 4) r_a 0;
                  fbin b Ir.Insn.Fsub (f 4) (f 4) (f 2);
                  store b (f 4) r_a 0;
                  (* momentum gets the symmetric update with a floor *)
                  addi b r_a r_idx mom;
                  load b (f 5) r_a 0;
                  fbin b Ir.Insn.Fadd (f 5) (f 5) (f 2);
                  lf b (f 6) (-1.0);
                  fcmp b Ir.Insn.Flt r_c (f 5) (f 6);
                  when_ b r_c (fun b -> lf b (f 5) (-1.0));
                  store b (f 5) r_a 0)));
      (* checksum *)
      lf b (f 0) 0.0;
      for_ b r_i ~from:(imm 0) ~below:(imm (n * n)) ~step:1 (fun b ->
          addi b r_a r_i rho;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 100.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "hydro2d";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "hydrodynamics stencil with limiter branches (104.hydro2d)";
  }
