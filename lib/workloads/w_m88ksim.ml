(* 124.m88ksim analogue: an instruction-set interpreter.

   Structural features mirrored: a fetch-decode-dispatch loop whose dispatch
   is an indexed multiway branch (8 opcode cases), simulated machine state
   held in memory, small basic blocks, and unpredictable inter-case control
   flow — the classic interpreter workload where basic-block tasks expose
   only tiny windows. *)

open Ir.Builder
open Util

let code_size = 600
let steps = 6000
let nregs = 16

(* encoded instruction: op in [0,8), rd/rs1/rs2 in [0,16), imm in [0,64) *)
let encode op rd rs1 rs2 imm =
  op lor (rd lsl 3) lor (rs1 lsl 7) lor (rs2 lsl 11) lor (imm lsl 15)

let gen_code ~input_salt () =
  let g = Lcg.create (0x88 + input_salt) in
  List.init code_size (fun i ->
      let op = Lcg.below g 8 in
      let rd = Lcg.below g nregs in
      let rs1 = Lcg.below g nregs in
      let rs2 = Lcg.below g nregs in
      let imm = Lcg.below g 64 in
      (* make op 5 (branch) target a plausible offset *)
      let imm = if op = 5 then (i + 1 + Lcg.below g 7) mod code_size else imm in
      encode op rd rs1 rs2 imm)

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let code = data_ints pb (gen_code ~input_salt ()) in
  let regs = alloc pb nregs in
  let dmem = data_ints pb (ints ~seed:(0x88D + input_salt) ~n:256 ~bound:1000) in
  let r_pc = t0 in
  let r_step = t1 in
  let r_insn = t2 in
  let r_op = t3 in
  let r_rd = t4 in
  let r_rs1 = t5 in
  let r_rs2 = t6 in
  let r_imm = t7 in
  let r_v1 = t8 in
  let r_v2 = t9 in
  let r_a = t10 in
  let r_acc = t11 in
  let read_sim_reg b ~dst ~idx =
    load_at b ~dst ~base:regs ~index:idx ~scratch:r_a
  in
  let write_sim_reg b ~src ~idx =
    store_at b ~src ~base:regs ~index:idx ~scratch:r_a
  in
  func pb "main" (fun b ->
      li b r_pc 0;
      li b r_acc 0;
      for_ b r_step ~from:(imm 0) ~below:(imm steps) ~step:1 (fun b ->
          (* fetch *)
          load_at b ~dst:r_insn ~base:code ~index:r_pc ~scratch:r_a;
          addi b r_pc r_pc 1;
          bin b Ir.Insn.Ge r_a r_pc (imm code_size);
          when_ b r_a (fun b -> li b r_pc 0);
          (* decode *)
          bin b Ir.Insn.And r_op r_insn (imm 7);
          bin b Ir.Insn.Shr r_rd r_insn (imm 3);
          bin b Ir.Insn.And r_rd r_rd (imm 15);
          bin b Ir.Insn.Shr r_rs1 r_insn (imm 7);
          bin b Ir.Insn.And r_rs1 r_rs1 (imm 15);
          bin b Ir.Insn.Shr r_rs2 r_insn (imm 11);
          bin b Ir.Insn.And r_rs2 r_rs2 (imm 15);
          bin b Ir.Insn.Shr r_imm r_insn (imm 15);
          bin b Ir.Insn.And r_imm r_imm (imm 1023);
          (* dispatch *)
          switch_ b r_op
            [|
              (* 0: add *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                read_sim_reg b ~dst:r_v2 ~idx:r_rs2;
                bin b Ir.Insn.Add r_v1 r_v1 (reg r_v2);
                write_sim_reg b ~src:r_v1 ~idx:r_rd);
              (* 1: sub *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                read_sim_reg b ~dst:r_v2 ~idx:r_rs2;
                bin b Ir.Insn.Sub r_v1 r_v1 (reg r_v2);
                write_sim_reg b ~src:r_v1 ~idx:r_rd);
              (* 2: and-immediate *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                bin b Ir.Insn.And r_v1 r_v1 (reg r_imm);
                write_sim_reg b ~src:r_v1 ~idx:r_rd);
              (* 3: load *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                bin b Ir.Insn.And r_v1 r_v1 (imm 255);
                load_at b ~dst:r_v2 ~base:dmem ~index:r_v1 ~scratch:r_a;
                write_sim_reg b ~src:r_v2 ~idx:r_rd);
              (* 4: store *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                bin b Ir.Insn.And r_v1 r_v1 (imm 255);
                read_sim_reg b ~dst:r_v2 ~idx:r_rs2;
                store_at b ~src:r_v2 ~base:dmem ~index:r_v1 ~scratch:r_a);
              (* 5: conditional branch on rs1 <> 0 *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                when_ b r_v1 (fun b -> mov b r_pc r_imm));
              (* 6: multiply *)
              (fun b ->
                read_sim_reg b ~dst:r_v1 ~idx:r_rs1;
                read_sim_reg b ~dst:r_v2 ~idx:r_rs2;
                bin b Ir.Insn.Mul r_v1 r_v1 (reg r_v2);
                bin b Ir.Insn.And r_v1 r_v1 (imm 0xFFFF);
                write_sim_reg b ~src:r_v1 ~idx:r_rd);
              (* 7: set-immediate *)
              (fun b -> write_sim_reg b ~src:r_imm ~idx:r_rd);
            |]
            ~default:(fun _ -> ());
          bin b Ir.Insn.Add r_acc r_acc (reg r_op));
      (* checksum: acc + simulated r0..r3 *)
      mov b Ir.Reg.rv r_acc;
      li b r_v1 0;
      for_ b r_v2 ~from:(imm 0) ~below:(imm 4) ~step:1 (fun b ->
          load_at b ~dst:r_v1 ~base:regs ~index:r_v2 ~scratch:r_a;
          bin b Ir.Insn.Add Ir.Reg.rv Ir.Reg.rv (reg r_v1));
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "m88ksim";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "instruction-set interpreter dispatch loop (124.m88ksim)";
  }
