(* 110.applu analogue: SSOR solver for coupled PDEs.

   Structural features mirrored: a lower-triangular sweep with a *serial*
   loop-carried fp dependence (each cell needs its predecessor — the kind of
   cross-task dependence the data-dependence heuristic schedules), plus an
   independent flux evaluation loop. *)

open Ir.Builder
open Util

let cells = 600
let iters = 5

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let v = data_floats pb (floats ~seed:(0xA991 + input_salt) ~n:cells) in
  let rhs = data_floats pb (floats ~seed:(0xA992 + input_salt) ~n:cells) in
  let fluxes = alloc pb cells in
  let r_t = t0 in
  let r_i = t1 in
  let r_a = t2 in
  let f k = Ir.Reg.tmp (16 + k) in
  func pb "main" (fun b ->
      for_ b r_t ~from:(imm 0) ~below:(imm iters) ~step:1 (fun b ->
          (* independent flux computation *)
          for_ b r_i ~from:(imm 1) ~below:(imm (cells - 1)) ~step:1 (fun b ->
              addi b r_a r_i v;
              load b (f 0) r_a 0;
              load b (f 1) r_a 1;
              load b (f 2) r_a (-1);
              fbin b Ir.Insn.Fsub (f 3) (f 1) (f 2);
              fbin b Ir.Insn.Fmul (f 3) (f 3) (f 0);
              fbin b Ir.Insn.Fadd (f 4) (f 1) (f 2);
              fbin b Ir.Insn.Fmul (f 4) (f 4) (f 4);
              fbin b Ir.Insn.Fadd (f 3) (f 3) (f 4);
              addi b r_a r_i fluxes;
              store b (f 3) r_a 0);
          (* serial SSOR sweep: v[i] = 0.8*v[i] + 0.2*(v[i-1] + rhs[i] - flux[i]) *)
          lf b (f 5) 0.8;
          lf b (f 6) 0.2;
          for_ b r_i ~from:(imm 1) ~below:(imm cells) ~step:1 (fun b ->
              addi b r_a r_i v;
              load b (f 0) r_a 0;
              load b (f 1) r_a (-1);
              addi b r_a r_i rhs;
              load b (f 2) r_a 0;
              bin b Ir.Insn.Lt r_a r_i (imm (cells - 1));
              if_ b r_a
                (fun b ->
                  addi b r_a r_i fluxes;
                  load b (f 3) r_a 0)
                (fun b -> lf b (f 3) 0.0);
              fbin b Ir.Insn.Fadd (f 4) (f 1) (f 2);
              fbin b Ir.Insn.Fsub (f 4) (f 4) (f 3);
              fbin b Ir.Insn.Fmul (f 4) (f 4) (f 6);
              fbin b Ir.Insn.Fmul (f 0) (f 0) (f 5);
              fbin b Ir.Insn.Fadd (f 0) (f 0) (f 4);
              funop b Ir.Insn.Fabs (f 7) (f 0);
              lf b (f 8) 1.0;
              fbin b Ir.Insn.Fadd (f 7) (f 7) (f 8);
              fbin b Ir.Insn.Fdiv (f 0) (f 0) (f 7);
              addi b r_a r_i v;
              store b (f 0) r_a 0));
      lf b (f 0) 0.0;
      for_ b r_i ~from:(imm 0) ~below:(imm cells) ~step:1 (fun b ->
          addi b r_a r_i v;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 1000.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "applu";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "SSOR sweep with serial carried dependence (110.applu)";
  }
