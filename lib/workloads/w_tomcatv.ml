(* 101.tomcatv analogue: 2-D vectorised mesh-generation relaxation.

   Structural features mirrored: perfectly regular nested loops whose bodies
   are long straight-line floating-point stencil computations (large basic
   blocks), a residual pass followed by an update sweep, and essentially no
   data-dependent branching — the loop-level parallelism the paper's
   heuristics exploit best. *)

open Ir.Builder
open Util

let n = 18
let iters = 3

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let x = data_floats pb (floats ~seed:(0x70C + input_salt) ~n:(n * n)) in
  let y = data_floats pb (floats ~seed:(0x70D + input_salt) ~n:(n * n)) in
  let rx = alloc pb (n * n) in
  let ry = alloc pb (n * n) in
  let r_t = t0 in
  let r_j = t1 in
  let r_i = t2 in
  let r_idx = t3 in
  let r_a = t4 in
  (* float temporaries *)
  let f k = Ir.Reg.tmp (16 + k) in
  let fc2 = f 14 in
  let fc05 = f 15 in
  let facc = f 13 in
  func pb "main" (fun b ->
      lf b fc2 2.0;
      lf b fc05 0.5;
      lf b facc 0.0;
      for_ b r_t ~from:(imm 0) ~below:(imm iters) ~step:1 (fun b ->
          (* residual pass *)
          for_ b r_j ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
              for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_j (imm n);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                  addi b r_a r_idx x;
                  load b (f 0) r_a (-1);
                  load b (f 1) r_a 1;
                  load b (f 2) r_a (-n);
                  load b (f 3) r_a n;
                  load b (f 4) r_a 0;
                  addi b r_a r_idx y;
                  load b (f 5) r_a (-1);
                  load b (f 6) r_a 1;
                  load b (f 7) r_a (-n);
                  load b (f 8) r_a n;
                  load b (f 9) r_a 0;
                  (* second differences in both directions, plus cross
                     coupling between x and y meshes *)
                  fbin b Ir.Insn.Fadd (f 10) (f 0) (f 1);
                  fbin b Ir.Insn.Fmul (f 11) fc2 (f 4);
                  fbin b Ir.Insn.Fsub (f 10) (f 10) (f 11);
                  fbin b Ir.Insn.Fadd (f 11) (f 2) (f 3);
                  fbin b Ir.Insn.Fmul (f 12) fc2 (f 4);
                  fbin b Ir.Insn.Fsub (f 11) (f 11) (f 12);
                  fbin b Ir.Insn.Fmul (f 11) (f 11) fc05;
                  fbin b Ir.Insn.Fadd (f 10) (f 10) (f 11);
                  fbin b Ir.Insn.Fsub (f 11) (f 6) (f 5);
                  fbin b Ir.Insn.Fmul (f 11) (f 11) fc05;
                  fbin b Ir.Insn.Fadd (f 10) (f 10) (f 11);
                  addi b r_a r_idx rx;
                  store b (f 10) r_a 0;
                  fbin b Ir.Insn.Fadd (f 10) (f 5) (f 6);
                  fbin b Ir.Insn.Fmul (f 11) fc2 (f 9);
                  fbin b Ir.Insn.Fsub (f 10) (f 10) (f 11);
                  fbin b Ir.Insn.Fadd (f 11) (f 7) (f 8);
                  fbin b Ir.Insn.Fmul (f 12) fc2 (f 9);
                  fbin b Ir.Insn.Fsub (f 11) (f 11) (f 12);
                  fbin b Ir.Insn.Fmul (f 11) (f 11) fc05;
                  fbin b Ir.Insn.Fadd (f 10) (f 10) (f 11);
                  fbin b Ir.Insn.Fsub (f 11) (f 1) (f 0);
                  fbin b Ir.Insn.Fmul (f 11) (f 11) fc05;
                  fbin b Ir.Insn.Fadd (f 10) (f 10) (f 11);
                  addi b r_a r_idx ry;
                  store b (f 10) r_a 0));
          (* update sweep *)
          lf b (f 12) 0.1;
          for_ b r_j ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
              for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
                  bin b Ir.Insn.Mul r_idx r_j (imm n);
                  bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                  addi b r_a r_idx rx;
                  load b (f 0) r_a 0;
                  addi b r_a r_idx x;
                  load b (f 1) r_a 0;
                  fbin b Ir.Insn.Fmul (f 0) (f 0) (f 12);
                  fbin b Ir.Insn.Fadd (f 1) (f 1) (f 0);
                  store b (f 1) r_a 0;
                  addi b r_a r_idx ry;
                  load b (f 0) r_a 0;
                  addi b r_a r_idx y;
                  load b (f 2) r_a 0;
                  fbin b Ir.Insn.Fmul (f 0) (f 0) (f 12);
                  fbin b Ir.Insn.Fadd (f 2) (f 2) (f 0);
                  store b (f 2) r_a 0)));
      (* checksum along the diagonal *)
      for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
          bin b Ir.Insn.Mul r_idx r_i (imm (n + 1));
          addi b r_a r_idx x;
          load b (f 0) r_a 0;
          fbin b Ir.Insn.Fadd facc facc (f 0));
      lf b (f 1) 1000.0;
      fbin b Ir.Insn.Fmul facc facc (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv facc;
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "tomcatv";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "2-D mesh relaxation stencil, large fp blocks (101.tomcatv)";
  }
