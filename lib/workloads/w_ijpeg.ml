(* 132.ijpeg analogue: 8x8 block transform + quantisation.

   Structural features mirrored: regular loops over image blocks whose
   bodies are medium-size straight-line integer code (a butterfly 1-D
   transform applied to rows then columns), followed by a branchy
   quantisation pass — ijpeg's loop-level parallelism that the paper's
   control-flow heuristic captures well (loop-body tasks). *)

open Ir.Builder
open Util

let blocks = 36
let block_px = 64 (* 8x8 *)

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let image =
    data_ints pb (ints ~seed:(0x17E6 + input_salt) ~n:(blocks * block_px) ~bound:256)
  in
  let quant = alloc pb (blocks * block_px) in
  let r_blk = t0 in
  let r_row = t1 in
  let r_base = t2 in
  let r_a = t3 in
  let v0 = t4 in
  let v1 = t5 in
  let v2 = t6 in
  let v3 = t7 in
  let s0 = t8 in
  let s1 = t9 in
  let d0 = t10 in
  let d1 = t11 in
  let r_acc = t12 in
  let r_i = t13 in
  let r_v = t14 in
  (* 4-point butterfly on [base+off0..off3] in place (image area) *)
  let butterfly b ~stride =
    let off k = k * stride in
    load b v0 r_base (off 0);
    load b v1 r_base (off 1);
    load b v2 r_base (off 2);
    load b v3 r_base (off 3);
    bin b Ir.Insn.Add s0 v0 (reg v3);
    bin b Ir.Insn.Add s1 v1 (reg v2);
    bin b Ir.Insn.Sub d0 v0 (reg v3);
    bin b Ir.Insn.Sub d1 v1 (reg v2);
    bin b Ir.Insn.Add v0 s0 (reg s1);
    bin b Ir.Insn.Sub v2 s0 (reg s1);
    bin b Ir.Insn.Shl r_a d1 (imm 1);
    bin b Ir.Insn.Add v1 d0 (reg r_a);
    bin b Ir.Insn.Shr r_a d0 (imm 1);
    bin b Ir.Insn.Sub v3 r_a (reg d1);
    store b v0 r_base (off 0);
    store b v1 r_base (off 1);
    store b v2 r_base (off 2);
    store b v3 r_base (off 3)
  in
  func pb "main" (fun b ->
      li b r_acc 0;
      for_ b r_blk ~from:(imm 0) ~below:(imm blocks) ~step:1 (fun b ->
          (* rows: two 4-point passes per 8-px row *)
          for_ b r_row ~from:(imm 0) ~below:(imm 8) ~step:1 (fun b ->
              bin b Ir.Insn.Mul r_base r_blk (imm block_px);
              bin b Ir.Insn.Shl r_a r_row (imm 3);
              bin b Ir.Insn.Add r_base r_base (reg r_a);
              addi b r_base r_base image;
              butterfly b ~stride:1;
              addi b r_base r_base 4;
              butterfly b ~stride:1);
          (* columns *)
          for_ b r_row ~from:(imm 0) ~below:(imm 8) ~step:1 (fun b ->
              bin b Ir.Insn.Mul r_base r_blk (imm block_px);
              bin b Ir.Insn.Add r_base r_base (reg r_row);
              addi b r_base r_base image;
              butterfly b ~stride:8;
              addi b r_base r_base 32;
              butterfly b ~stride:8);
          (* quantisation with dead-zone branches *)
          for_ b r_i ~from:(imm 0) ~below:(imm block_px) ~step:1 (fun b ->
              bin b Ir.Insn.Mul r_a r_blk (imm block_px);
              bin b Ir.Insn.Add r_a r_a (reg r_i);
              addi b r_base r_a image;
              load b r_v r_base 0;
              bin b Ir.Insn.Lt r_a r_v (imm 16);
              if_ b r_a
                (fun b ->
                  bin b Ir.Insn.Gt r_a r_v (imm (-16));
                  if_ b r_a
                    (fun b -> li b r_v 0)
                    (fun b -> bin b Ir.Insn.Shr r_v r_v (imm 4)))
                (fun b -> bin b Ir.Insn.Shr r_v r_v (imm 4));
              bin b Ir.Insn.Mul r_a r_blk (imm block_px);
              bin b Ir.Insn.Add r_a r_a (reg r_i);
              addi b r_a r_a quant;
              store b r_v r_a 0;
              bin b Ir.Insn.Add r_acc r_acc (reg r_v)));
      (* entropy-coding pass: the original Huffman-codes the quantised
         coefficients; we table-look-up a code length per magnitude class
         and accumulate the bitstream length, with the run-length zig-zag's
         data-dependent zero-run branches *)
      li b r_v 0 (* bit count *);
      li b s0 0 (* current zero run *);
      for_ b r_i ~from:(imm 0) ~below:(imm (blocks * block_px)) ~step:1
        (fun b ->
          addi b r_a r_i quant;
          load b v0 r_a 0;
          bin b Ir.Insn.Eq r_base v0 (imm 0);
          if_ b r_base
            (fun b -> addi b s0 s0 1)
            (fun b ->
              (* magnitude class = position of highest bit, bounded *)
              li b s1 0;
              bin b Ir.Insn.Lt d0 v0 (imm 0);
              when_ b d0 (fun b -> bin b Ir.Insn.Sub v0 Ir.Reg.zero (reg v0));
              while_ b
                ~cond:(fun b ->
                  bin b Ir.Insn.Gt d1 v0 (imm 0);
                  d1)
                (fun b ->
                  bin b Ir.Insn.Shr v0 v0 (imm 1);
                  addi b s1 s1 1);
              (* run/size code cost: 4 bits per run chunk + size bits + 3 *)
              bin b Ir.Insn.Shr d0 s0 (imm 2);
              bin b Ir.Insn.Shl d0 d0 (imm 2);
              bin b Ir.Insn.Add r_v r_v (reg d0);
              bin b Ir.Insn.Add r_v r_v (reg s1);
              addi b r_v r_v 3;
              li b s0 0));
      bin b Ir.Insn.Add r_acc r_acc (reg r_v);
      mov b Ir.Reg.rv r_acc;
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "ijpeg";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "8x8 block transform and quantisation (132.ijpeg)";
  }
