(** Shared helpers for the synthetic SPEC95-like workloads. *)

(** Deterministic pseudo-random data generator (host-side, used to fill data
    segments so each workload is reproducible). *)
module Lcg : sig
  type t

  val create : int -> t

  val next : t -> int
  (** 30-bit non-negative. *)

  val below : t -> int -> int
  (** Uniform in [0, n). *)

  val float01 : t -> float
end

val ints : seed:int -> n:int -> bound:int -> int list
val floats : seed:int -> n:int -> float list

(** Frequently used temporaries, named for readability in workload code. *)
val t0 : Ir.Reg.t
val t1 : Ir.Reg.t
val t2 : Ir.Reg.t
val t3 : Ir.Reg.t
val t4 : Ir.Reg.t
val t5 : Ir.Reg.t
val t6 : Ir.Reg.t
val t7 : Ir.Reg.t
val t8 : Ir.Reg.t
val t9 : Ir.Reg.t
val t10 : Ir.Reg.t
val t11 : Ir.Reg.t
val t12 : Ir.Reg.t
val t13 : Ir.Reg.t
val t14 : Ir.Reg.t
val t15 : Ir.Reg.t

val imm : int -> Ir.Insn.operand
val reg : Ir.Reg.t -> Ir.Insn.operand

val push : Ir.Builder.b -> Ir.Reg.t -> unit
(** Spill a register to the runtime stack (for recursive functions). *)

val pop : Ir.Builder.b -> Ir.Reg.t -> unit

val load_at : Ir.Builder.b -> dst:Ir.Reg.t -> base:int -> index:Ir.Reg.t ->
  scratch:Ir.Reg.t -> unit
(** [dst <- mem[base + index]] using [scratch] for address arithmetic. *)

val store_at : Ir.Builder.b -> src:Ir.Reg.t -> base:int -> index:Ir.Reg.t ->
  scratch:Ir.Reg.t -> unit
