(* Seeded, parameterized synthetic IR program generators.

   The corpus definition shared by the qcheck suites, [msc fuzz], the bench
   fuzz section and the daemon fuzz op.  Everything is built through the
   public builder API, so programs are valid by construction; loops are
   counted with constant bounds and divisions are guarded, so they
   terminate.  Generation is deterministic in (profile, seed).

   Register discipline (the interpreter has a single global register file,
   so writers must not collide with live induction variables):
     tmp 4..11   playground: seeded integer scratch, freely clobbered
     tmp 12..17  main's loop induction / while counters, one per nest level
     tmp 18..25  helper-chain loop counters, one per chain position
     tmp 26..29  float scratch
   Helpers only write playground/float/rv/own-counter registers, so calls
   nested inside main's loops can never perturb a loop bound. *)

module Profile = struct
  type t = {
    name : string;
    description : string;
    call_depth : int;
    nest_depth : int;
    op_budget : int;
    max_iters : int;
    branch_pct : int;
    switch_fanout : int;
    mem_cells : int;
    mem_stride : int;
    regions : int;
    alias : bool;
    early_ret_pct : int;
    straight_max : int;
    use_float : bool;
  }

  let default =
    {
      name = "default";
      description = "balanced mix of every construct (historical test/gen.ml)";
      call_depth = 1;
      nest_depth = 4;
      op_budget = 10;
      max_iters = 7;
      branch_pct = 35;
      switch_fanout = 4;
      mem_cells = 64;
      mem_stride = 1;
      regions = 1;
      alias = false;
      early_ret_pct = 8;
      straight_max = 6;
      use_float = false;
    }

  let all =
    [
      default;
      {
        default with
        name = "straightline";
        description = "pure straight-line code (single-task bb stress)";
        call_depth = 0;
        nest_depth = 0;
        max_iters = 0;
        branch_pct = 0;
        switch_fanout = 0;
        early_ret_pct = 0;
        straight_max = 8;
      };
      {
        default with
        name = "deep-calls";
        description = "long non-recursive helper chains (call-boundary stress)";
        call_depth = 6;
        nest_depth = 3;
        branch_pct = 25;
        op_budget = 8;
      };
      {
        default with
        name = "loopy";
        description = "deep counted loop nests (induction/unroll stress)";
        call_depth = 0;
        nest_depth = 5;
        op_budget = 12;
        branch_pct = 15;
        switch_fanout = 0;
      };
      {
        default with
        name = "branchy";
        description = "dense two-way branching (control-flow heuristic stress)";
        nest_depth = 5;
        op_budget = 14;
        max_iters = 3;
        branch_pct = 75;
      };
      {
        default with
        name = "switchy";
        description = "wide multiway branches (switch fan-out stress)";
        op_budget = 12;
        branch_pct = 20;
        switch_fanout = 8;
      };
      {
        default with
        name = "mem-stride";
        description = "strided accesses over two disjoint regions";
        mem_cells = 32;
        mem_stride = 4;
        regions = 2;
      };
      {
        default with
        name = "mem-alias";
        description = "overlapping scratch regions (memdep aliasing stress)";
        mem_cells = 32;
        mem_stride = 2;
        regions = 3;
        alias = true;
      };
      {
        default with
        name = "early-ret";
        description = "frequent guarded early returns (exit-edge stress)";
        early_ret_pct = 40;
        op_budget = 12;
      };
      {
        default with
        name = "float-mix";
        description = "FP arithmetic, compares and conversions in the mix";
        use_float = true;
      };
      {
        default with
        name = "big";
        description = "large bodies: high budget, long straight-line runs";
        call_depth = 3;
        op_budget = 24;
        branch_pct = 40;
        straight_max = 8;
      };
    ]

  let find name = List.find_opt (fun p -> p.name = name) all
end

(* Self-contained deterministic RNG (splitmix-style over 62-bit ints) so the
   corpus does not depend on qcheck or the stdlib Random state. *)
module Rng = struct
  type t = { mutable s : int }

  let mask = (1 lsl 62) - 1

  let mix z =
    let z = z lxor (z lsr 31) in
    let z = z * 0x2545F4914F6CDD1D land mask in
    let z = z lxor (z lsr 29) in
    let z = z * 0x1D8E4E27C47D124F land mask in
    z lxor (z lsr 32)

  let create seed = { s = mix ((seed land mask) lxor 0x5DEECE66D) }

  let next t =
    t.s <- (t.s + 0x1E3779B97F4A7C15) land mask;
    mix t.s

  let below t n = if n <= 0 then 0 else next t mod n
  let chance t pct = below t 100 < pct
end

let program_seed ~seed ~index = (seed * 1_000_003) + (index * 7919)

(* register map (see header comment) *)
let playground rng = Ir.Reg.tmp (4 + Rng.below rng 8)
let main_loop_reg nest = Ir.Reg.tmp (12 + min nest 5)
let helper_loop_reg k = Ir.Reg.tmp (18 + min k 7)
let float_reg rng = Ir.Reg.tmp (26 + Rng.below rng 4)

let pow2_mask n =
  let rec go m = if m >= n - 1 then m else go ((m * 2) + 1) in
  go 1

let gen_binop rng =
  let open Ir.Insn in
  match Rng.below rng 12 with
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> And
  | 4 -> Or
  | 5 -> Xor
  | 6 -> Shl
  | 7 -> Shr
  | 8 -> Lt
  | 9 -> Le
  | 10 -> Eq
  | _ -> Ne

let gen_fbinop rng =
  let open Ir.Insn in
  match Rng.below rng 6 with
  | 0 -> Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | 4 -> Fmin
  | _ -> Fmax

let gen_fcmp rng =
  let open Ir.Insn in
  match Rng.below rng 4 with 0 -> Flt | 1 -> Fle | 2 -> Feq | _ -> Fne

(* one bounded memory access: mask the index into [0, cells), scale by the
   stride, displace within the element -- always inside the chosen region *)
let gen_mem_access ~(prof : Profile.t) ~regions b rng ~is_store =
  let base = List.nth regions (Rng.below rng (List.length regions)) in
  let a = playground rng in
  let s = playground rng in
  Ir.Builder.bin b Ir.Insn.And a s (Ir.Insn.Imm (prof.mem_cells - 1));
  if prof.mem_stride > 1 then
    Ir.Builder.bin b Ir.Insn.Mul a a (Ir.Insn.Imm prof.mem_stride);
  Ir.Builder.addi b a a base;
  let off = if prof.mem_stride > 1 then Rng.below rng prof.mem_stride else 0 in
  if is_store then Ir.Builder.store b (playground rng) a off
  else Ir.Builder.load b (playground rng) a off

let gen_float_op b rng =
  let fd = float_reg rng in
  match Rng.below rng 5 with
  | 0 -> Ir.Builder.lf b fd (float_of_int (Rng.below rng 1000) /. 8.0)
  | 1 -> Ir.Builder.fbin b (gen_fbinop rng) fd (float_reg rng) (float_reg rng)
  | 2 -> Ir.Builder.fcmp b (gen_fcmp rng) (playground rng) fd (float_reg rng)
  | 3 ->
    Ir.Builder.funop b Ir.Insn.Itof fd (playground rng);
    Ir.Builder.funop b Ir.Insn.Fabs fd fd;
    Ir.Builder.funop b Ir.Insn.Fsqrt fd fd
  | _ -> Ir.Builder.funop b Ir.Insn.Ftoi (playground rng) (float_reg rng)

let gen_straight ~(prof : Profile.t) ~regions b rng =
  let n = 1 + Rng.below rng prof.straight_max in
  for _ = 1 to n do
    let d = playground rng in
    match Rng.below rng (if prof.use_float then 10 else 9) with
    | 0 -> Ir.Builder.li b d (Rng.below rng 1000)
    | 1 ->
      Ir.Builder.bin b (gen_binop rng) d (playground rng)
        (Ir.Insn.Imm (1 + Rng.below rng 30))
    | 2 ->
      Ir.Builder.bin b (gen_binop rng) d (playground rng)
        (Ir.Insn.Reg (playground rng))
    | 3 ->
      (* guarded division: by a non-zero constant, or by a register forced
         odd (hence non-zero) with an or-mask *)
      let s = playground rng in
      if Rng.chance rng 50 then
        Ir.Builder.bin b Ir.Insn.Div d s (Ir.Insn.Imm (1 + Rng.below rng 9))
      else begin
        let dv = playground rng in
        Ir.Builder.bin b Ir.Insn.Or dv (playground rng) (Ir.Insn.Imm 1);
        Ir.Builder.bin b
          (if Rng.chance rng 50 then Ir.Insn.Div else Ir.Insn.Rem)
          d s (Ir.Insn.Reg dv)
      end
    | 4 -> gen_mem_access ~prof ~regions b rng ~is_store:false
    | 5 -> gen_mem_access ~prof ~regions b rng ~is_store:true
    | 6 -> Ir.Builder.mov b d (playground rng)
    | 7 -> Ir.Builder.emit b (Ir.Insn.Cmov (d, playground rng, playground rng))
    | 8 ->
      Ir.Builder.bin b
        (if Rng.chance rng 50 then Ir.Insn.Gt else Ir.Insn.Ge)
        d (playground rng)
        (Ir.Insn.Reg (playground rng))
    | _ -> gen_float_op b rng
  done

type budget = { mutable left : int }

type construct = C_if | C_when | C_for | C_while | C_switch | C_call | C_early

let pick_weighted rng choices =
  let choices = List.filter (fun (w, _) -> w > 0) choices in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  if total = 0 then None
  else begin
    let k = Rng.below rng total in
    let rec go k = function
      | [] -> None
      | (w, x) :: _ when k < w -> Some x
      | (w, _) :: tl -> go (k - w) tl
    in
    go k choices
  end

let rec gen_body ~(prof : Profile.t) ~regions ~budget ~depth ~loop_var b rng =
  gen_straight ~prof ~regions b rng;
  let constructs = 1 + Rng.below rng 2 in
  for _ = 1 to constructs do
    if budget.left > 0 && depth < prof.nest_depth then begin
      budget.left <- budget.left - 1;
      let pick =
        pick_weighted rng
          [
            (prof.branch_pct, C_if);
            (max 0 (prof.branch_pct / 2), C_when);
            ((if prof.max_iters > 0 then 30 else 0), C_for);
            ((if prof.max_iters > 0 then 10 else 0), C_while);
            ((if prof.switch_fanout > 0 then 20 else 0), C_switch);
            ((if prof.call_depth > 0 then 15 else 0), C_call);
            (prof.early_ret_pct, C_early);
          ]
      in
      let recurse ~extra_loop b =
        gen_body ~prof ~regions ~budget ~depth:(depth + 1)
          ~loop_var:(loop_var + extra_loop) b rng
      in
      match pick with
      | None -> ()
      | Some C_if ->
        let c = playground rng in
        Ir.Builder.if_ b c (recurse ~extra_loop:0) (recurse ~extra_loop:0)
      | Some C_when ->
        let c = playground rng in
        Ir.Builder.when_ b c (recurse ~extra_loop:0)
      | Some C_for ->
        let r = main_loop_reg loop_var in
        let iters = 1 + Rng.below rng prof.max_iters in
        Ir.Builder.for_ b r ~from:(Ir.Insn.Imm 0) ~below:(Ir.Insn.Imm iters)
          ~step:1 (recurse ~extra_loop:1)
      | Some C_while ->
        (* bounded while: count a dedicated register down to zero *)
        let cnt = main_loop_reg loop_var in
        let iters = 1 + Rng.below rng prof.max_iters in
        Ir.Builder.li b cnt iters;
        Ir.Builder.while_ b
          ~cond:(fun b ->
            let c = playground rng in
            Ir.Builder.addi b cnt cnt (-1);
            Ir.Builder.bin b Ir.Insn.Ge c cnt (Ir.Insn.Imm 0);
            c)
          (recurse ~extra_loop:1)
      | Some C_switch ->
        let c = playground rng in
        let arms = 1 + Rng.below rng prof.switch_fanout in
        Ir.Builder.bin b Ir.Insn.And c c (Ir.Insn.Imm (pow2_mask (arms + 1)));
        Ir.Builder.switch_ b c
          (Array.init arms (fun _ b -> gen_straight ~prof ~regions b rng))
          ~default:(fun b -> gen_straight ~prof ~regions b rng)
      | Some C_call ->
        Ir.Builder.li b (Ir.Reg.arg 0) (Rng.below rng 64);
        Ir.Builder.call b "h0";
        gen_straight ~prof ~regions b rng
      | Some C_early ->
        let c = playground rng in
        Ir.Builder.bin b Ir.Insn.And c (playground rng) (Ir.Insn.Imm 1);
        Ir.Builder.when_ b c (fun b ->
            Ir.Builder.li b Ir.Reg.rv (Rng.below rng 1000);
            Ir.Builder.ret b)
    end
  done

(* helper chain h0 -> h1 -> ... : strictly increasing positions, so no
   recursion; each helper only writes playground/float/rv and its own
   dedicated loop counter (see the register map) *)
let gen_helper ~(prof : Profile.t) ~regions pb rng k =
  let name = "h" ^ string_of_int k in
  Ir.Builder.func pb name (fun b ->
      gen_straight ~prof ~regions b rng;
      if prof.max_iters > 0 && Rng.chance rng 35 then begin
        let r = helper_loop_reg k in
        let iters = 1 + Rng.below rng (min 4 prof.max_iters) in
        Ir.Builder.for_ b r ~from:(Ir.Insn.Imm 0) ~below:(Ir.Insn.Imm iters)
          ~step:1 (fun b -> gen_straight ~prof ~regions b rng)
      end;
      if k + 1 < prof.call_depth then begin
        Ir.Builder.li b (Ir.Reg.arg 0) (Rng.below rng 64);
        Ir.Builder.call b ("h" ^ string_of_int (k + 1));
        gen_straight ~prof ~regions b rng
      end;
      Ir.Builder.bin b Ir.Insn.Add Ir.Reg.rv (Ir.Reg.arg 0)
        (Ir.Insn.Imm (k + 1));
      Ir.Builder.ret b)

let mk_regions pb (prof : Profile.t) =
  let size = prof.mem_cells * prof.mem_stride in
  if prof.alias && prof.regions > 1 then begin
    (* one arena, bases half-a-region apart: every pair of regions overlaps *)
    let span = size + ((prof.regions - 1) * (size / 2)) in
    let base0 = Ir.Builder.alloc pb span in
    List.init prof.regions (fun i -> base0 + (i * (size / 2)))
  end
  else List.init prof.regions (fun _ -> Ir.Builder.alloc pb size)

let generate ~(profile : Profile.t) ~seed =
  let prof = profile in
  let rng = Rng.create ((seed * 0x9E3779B1) + Hashtbl.hash prof.name) in
  let pb = Ir.Builder.program () in
  let regions = mk_regions pb prof in
  (* give the first region some initialised cells so the data segment (and
     its textual round-trip) is exercised too *)
  let r0 = List.hd regions in
  for i = 0 to min 7 (prof.mem_cells - 1) do
    Ir.Builder.init_cell pb
      (r0 + (i * prof.mem_stride))
      (Ir.Value.Int (Rng.below rng 1000))
  done;
  if prof.use_float && prof.mem_cells >= 16 then
    for i = 8 to 11 do
      Ir.Builder.init_cell pb
        (r0 + (i * prof.mem_stride))
        (Ir.Value.Flt (float_of_int (Rng.below rng 256) /. 4.0))
    done;
  for k = 0 to prof.call_depth - 1 do
    gen_helper ~prof ~regions pb rng k
  done;
  Ir.Builder.func pb "main" (fun b ->
      (* deterministic seeds for the playground registers *)
      for i = 0 to 7 do
        Ir.Builder.li b (Ir.Reg.tmp (4 + i)) (Rng.below rng 1000)
      done;
      if prof.use_float then
        for i = 0 to 3 do
          Ir.Builder.lf b
            (Ir.Reg.tmp (26 + i))
            (float_of_int (Rng.below rng 512) /. 16.0)
        done;
      let budget =
        { left = ((prof.op_budget + 1) / 2) + Rng.below rng ((prof.op_budget / 2) + 1) }
      in
      gen_body ~prof ~regions ~budget ~depth:0 ~loop_var:0 b rng;
      (* digest the playground into rv *)
      Ir.Builder.li b Ir.Reg.rv 0;
      for i = 0 to 7 do
        Ir.Builder.bin b Ir.Insn.Xor Ir.Reg.rv Ir.Reg.rv
          (Ir.Insn.Reg (Ir.Reg.tmp (4 + i)))
      done;
      if prof.use_float then begin
        Ir.Builder.funop b Ir.Insn.Ftoi (Ir.Reg.tmp 4) (Ir.Reg.tmp 26);
        Ir.Builder.bin b Ir.Insn.Xor Ir.Reg.rv Ir.Reg.rv
          (Ir.Insn.Reg (Ir.Reg.tmp 4))
      end;
      Ir.Builder.ret b);
  Ir.Builder.finish pb ~main:"main"

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

(* drop functions unreachable from main (callee closure) *)
let prune_funcs (p : Ir.Prog.t) =
  let seen = Hashtbl.create 8 in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match Ir.Prog.Smap.find_opt name p.funcs with
      | Some f -> List.iter go (Ir.Func.callees f)
      | None -> ()
    end
  in
  go p.main;
  { p with funcs = Ir.Prog.Smap.filter (fun n _ -> Hashtbl.mem seen n) p.funcs }

let map_blocks f g =
  { f with Ir.Func.blocks = Array.map g f.Ir.Func.blocks }

(* remove function [name], rewriting every call to it into a fall-through *)
let drop_func (p : Ir.Prog.t) name =
  let rewrite blk =
    match blk.Ir.Block.term with
    | Ir.Block.Call (g, cont) when g = name ->
      { blk with Ir.Block.term = Ir.Block.Jump cont }
    | _ -> blk
  in
  let funcs = Ir.Prog.Smap.remove name p.funcs in
  let funcs = Ir.Prog.Smap.map (fun f -> map_blocks f rewrite) funcs in
  prune_funcs { p with funcs }

(* collapse one block's terminator to an unconditional jump *)
let collapse_term (p : Ir.Prog.t) fname label term =
  let f = Ir.Prog.Smap.find fname p.funcs in
  let f =
    map_blocks f (fun blk ->
        if blk.Ir.Block.label = label then { blk with Ir.Block.term = term }
        else blk)
  in
  let f = Ir.Func.drop_unreachable f in
  prune_funcs { p with funcs = Ir.Prog.Smap.add fname f p.funcs }

let replace_insns (p : Ir.Prog.t) fname label insns =
  let f = Ir.Prog.Smap.find fname p.funcs in
  let f =
    map_blocks f (fun blk ->
        if blk.Ir.Block.label = label then { blk with Ir.Block.insns = insns }
        else blk)
  in
  { p with funcs = Ir.Prog.Smap.add fname f p.funcs }

let shrink_candidates (p : Ir.Prog.t) =
  let out = ref [] in
  let add c = out := c :: !out in
  (* dropped instruction runs (least aggressive; consed first so they end up
     last after the final reversal) *)
  Ir.Prog.Smap.iter
    (fun fname f ->
      Array.iter
        (fun blk ->
          let insns = blk.Ir.Block.insns in
          let n = Array.length insns in
          let label = blk.Ir.Block.label in
          if n >= 1 && n <= 6 then
            for i = n - 1 downto 0 do
              add
                (replace_insns p fname label
                   (Array.append (Array.sub insns 0 i)
                      (Array.sub insns (i + 1) (n - i - 1))))
            done;
          if n >= 4 then begin
            add (replace_insns p fname label (Array.sub insns 0 (n / 2)));
            add
              (replace_insns p fname label
                 (Array.sub insns (n / 2) (n - (n / 2))))
          end;
          if n >= 1 then add (replace_insns p fname label [||]))
        f.Ir.Func.blocks)
    p.funcs;
  (* collapsed terminators *)
  Ir.Prog.Smap.iter
    (fun fname f ->
      Array.iter
        (fun blk ->
          let label = blk.Ir.Block.label in
          match blk.Ir.Block.term with
          | Ir.Block.Br (_, l1, l2) ->
            add (collapse_term p fname label (Ir.Block.Jump l2));
            if l1 <> l2 then
              add (collapse_term p fname label (Ir.Block.Jump l1))
          | Ir.Block.Switch (_, _, d) ->
            add (collapse_term p fname label (Ir.Block.Jump d))
          | Ir.Block.Call (_, cont) ->
            add (collapse_term p fname label (Ir.Block.Jump cont))
          | Ir.Block.Jump _ | Ir.Block.Ret | Ir.Block.Halt -> ())
        f.Ir.Func.blocks)
    p.funcs;
  (* dropped helper functions (most aggressive, tried first) *)
  Ir.Prog.Smap.iter
    (fun name _ -> if name <> p.main then add (drop_func p name))
    p.funcs;
  List.filter (fun c -> Ir.Prog.validate c = Ok ()) !out
