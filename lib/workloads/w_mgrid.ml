(* 107.mgrid analogue: multigrid 3-D Poisson smoother.

   Structural features mirrored: triply-nested loops with a 7-point 3-D
   stencil (long fp bodies, strided addressing), applied at two grid levels
   with an injection step between them — mgrid's deep loop nests and very
   predictable control flow. *)

open Ir.Builder
open Util

let n = 10 (* fine grid n^3 *)
let nc = 5 (* coarse grid *)
let sweeps = 2

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let fine = data_floats pb (floats ~seed:(0x316 + input_salt) ~n:(n * n * n)) in
  let coarse = alloc pb (nc * nc * nc) in
  let tmp = alloc pb (n * n * n) in
  let r_s = t0 in
  let r_k = t1 in
  let r_j = t2 in
  let r_i = t3 in
  let r_idx = t4 in
  let r_a = t5 in
  let f x = Ir.Reg.tmp (16 + x) in
  let smooth b ~src ~dst ~dim =
    for_ b r_k ~from:(imm 1) ~below:(imm (dim - 1)) ~step:1 (fun b ->
        for_ b r_j ~from:(imm 1) ~below:(imm (dim - 1)) ~step:1 (fun b ->
            for_ b r_i ~from:(imm 1) ~below:(imm (dim - 1)) ~step:1 (fun b ->
                bin b Ir.Insn.Mul r_idx r_k (imm (dim * dim));
                bin b Ir.Insn.Mul r_a r_j (imm dim);
                bin b Ir.Insn.Add r_idx r_idx (reg r_a);
                bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                addi b r_a r_idx src;
                load b (f 0) r_a 0;
                load b (f 1) r_a 1;
                load b (f 2) r_a (-1);
                load b (f 3) r_a dim;
                load b (f 4) r_a (-dim);
                load b (f 5) r_a (dim * dim);
                load b (f 6) r_a (-(dim * dim));
                fbin b Ir.Insn.Fadd (f 7) (f 1) (f 2);
                fbin b Ir.Insn.Fadd (f 8) (f 3) (f 4);
                fbin b Ir.Insn.Fadd (f 9) (f 5) (f 6);
                fbin b Ir.Insn.Fadd (f 7) (f 7) (f 8);
                fbin b Ir.Insn.Fadd (f 7) (f 7) (f 9);
                lf b (f 10) 0.125;
                fbin b Ir.Insn.Fmul (f 7) (f 7) (f 10);
                lf b (f 11) 0.25;
                fbin b Ir.Insn.Fmul (f 12) (f 0) (f 11);
                fbin b Ir.Insn.Fadd (f 7) (f 7) (f 12);
                addi b r_a r_idx dst;
                store b (f 7) r_a 0)))
  in
  func pb "main" (fun b ->
      for_ b r_s ~from:(imm 0) ~below:(imm sweeps) ~step:1 (fun b ->
          (* fine smooth into tmp, copy back *)
          smooth b ~src:fine ~dst:tmp ~dim:n;
          for_ b r_i ~from:(imm 0) ~below:(imm (n * n * n)) ~step:1 (fun b ->
              addi b r_a r_i tmp;
              load b (f 0) r_a 0;
              addi b r_a r_i fine;
              store b (f 0) r_a 0);
          (* inject to coarse: every other point *)
          for_ b r_k ~from:(imm 0) ~below:(imm nc) ~step:1 (fun b ->
              for_ b r_j ~from:(imm 0) ~below:(imm nc) ~step:1 (fun b ->
                  for_ b r_i ~from:(imm 0) ~below:(imm nc) ~step:1 (fun b ->
                      bin b Ir.Insn.Shl r_idx r_k (imm 1);
                      bin b Ir.Insn.Mul r_idx r_idx (imm (n * n));
                      bin b Ir.Insn.Shl r_a r_j (imm 1);
                      bin b Ir.Insn.Mul r_a r_a (imm n);
                      bin b Ir.Insn.Add r_idx r_idx (reg r_a);
                      bin b Ir.Insn.Shl r_a r_i (imm 1);
                      bin b Ir.Insn.Add r_idx r_idx (reg r_a);
                      addi b r_a r_idx fine;
                      load b (f 0) r_a 0;
                      bin b Ir.Insn.Mul r_idx r_k (imm (nc * nc));
                      bin b Ir.Insn.Mul r_a r_j (imm nc);
                      bin b Ir.Insn.Add r_idx r_idx (reg r_a);
                      bin b Ir.Insn.Add r_idx r_idx (reg r_i);
                      addi b r_a r_idx coarse;
                      store b (f 0) r_a 0)));
          (* coarse smooth in place via tmp area reuse *)
          smooth b ~src:coarse ~dst:coarse ~dim:nc);
      (* checksum *)
      lf b (f 0) 0.0;
      for_ b r_i ~from:(imm 0) ~below:(imm (n * n * n)) ~step:1 (fun b ->
          addi b r_a r_i fine;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 100.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "mgrid";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "multigrid 3-D smoother and injection (107.mgrid)";
  }
