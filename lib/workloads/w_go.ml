(* 099.go analogue: board evaluation with irregular control flow.

   Structural features mirrored: nested loops over a Go board with deep,
   data-dependent branch chains (empty / own / enemy cases), small leaf
   functions called per stone (liberty counting — below CALL_THRESH, so the
   task-size heuristic includes them), and accumulators creating cross-block
   register dependences. *)

open Ir.Builder
open Util

let dim = 21 (* 19x19 with a border *)
let board_cells = dim * dim
let passes = 10

let gen_board ~input_salt () =
  let g = Lcg.create (0x60 + input_salt) in
  List.init board_cells (fun i ->
      let x = i mod dim and y = i / dim in
      if x = 0 || y = 0 || x = dim - 1 || y = dim - 1 then 3 (* border *)
      else
        match Lcg.below g 5 with
        | 0 -> 1 (* black *)
        | 1 -> 2 (* white *)
        | _ -> 0 (* empty *))

(* globals for the liberty helper: cell index in, liberty count out *)
let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let board = data_ints pb (gen_board ~input_salt ()) in
  let influence = alloc pb board_cells in
  let r_pos = t0 in
  let r_cell = t1 in
  let r_acc = t2 in
  let r_a = t3 in
  let r_n = t4 in
  let r_libs = t5 in
  let r_pass = t6 in
  let r_inf = t7 in
  (* count_liberties: a0 = position, rv = number of empty neighbours
     (all eight).  ~42 dynamic instructions: above CALL_THRESH, so this call
     stays a task boundary even under the task-size heuristic — like the
     paper's benchmarks, go does not respond to that heuristic. *)
  func pb "count_liberties" (fun b ->
      li b Ir.Reg.rv 0;
      let check off b =
        addi b r_n (Ir.Reg.arg 0) off;
        load_at b ~dst:r_a ~base:board ~index:r_n ~scratch:r_n;
        bin b Ir.Insn.Eq r_a r_a (imm 0);
        bin b Ir.Insn.Add Ir.Reg.rv Ir.Reg.rv (reg r_a)
      in
      List.iter
        (fun off -> check off b)
        [ -1; 1; -dim; dim; -dim - 1; -dim + 1; dim - 1; dim + 1 ];
      ret b);
  (* influence_of: a0 = position, a1 = colour; spreads a small weight to the
     four neighbours; larger than CALL_THRESH in aggregate use but short
     enough to stress call-terminated tasks. *)
  func pb "spread_influence" (fun b ->
      let w off b =
        addi b r_n (Ir.Reg.arg 0) off;
        load_at b ~dst:r_inf ~base:influence ~index:r_n ~scratch:r_a;
        bin b Ir.Insn.Add r_inf r_inf (reg (Ir.Reg.arg 1));
        addi b r_n (Ir.Reg.arg 0) off;
        store_at b ~src:r_inf ~base:influence ~index:r_n ~scratch:r_a
      in
      w (-1) b;
      w 1 b;
      w (-dim) b;
      w dim b;
      ret b);
  func pb "main" (fun b ->
      li b r_acc 0;
      for_ b r_pass ~from:(imm 0) ~below:(imm passes) ~step:1 (fun b ->
          for_ b r_pos ~from:(imm (dim + 1))
            ~below:(imm (board_cells - dim - 1)) ~step:1 (fun b ->
              load_at b ~dst:r_cell ~base:board ~index:r_pos ~scratch:r_a;
              (* border? skip *)
              bin b Ir.Insn.Eq r_a r_cell (imm 3);
              if_ b r_a
                (fun _ -> ())
                (fun b ->
                  bin b Ir.Insn.Eq r_a r_cell (imm 0);
                  if_ b r_a
                    (fun b ->
                      (* empty: influence decides the accumulator sign *)
                      load_at b ~dst:r_inf ~base:influence ~index:r_pos
                        ~scratch:r_a;
                      bin b Ir.Insn.Gt r_a r_inf (imm 0);
                      if_ b r_a
                        (fun b -> addi b r_acc r_acc 1)
                        (fun b ->
                          bin b Ir.Insn.Lt r_a r_inf (imm 0);
                          when_ b r_a (fun b -> addi b r_acc r_acc (-1))))
                    (fun b ->
                      (* stone: count liberties, maybe spread influence *)
                      mov b (Ir.Reg.arg 0) r_pos;
                      call b "count_liberties";
                      mov b r_libs Ir.Reg.rv;
                      bin b Ir.Insn.Le r_a r_libs (imm 1);
                      if_ b r_a
                        (fun b ->
                          (* atari: weigh heavily *)
                          bin b Ir.Insn.Eq r_a r_cell (imm 1);
                          if_ b r_a
                            (fun b -> addi b r_acc r_acc 8)
                            (fun b -> addi b r_acc r_acc (-8)))
                        (fun b ->
                          mov b (Ir.Reg.arg 0) r_pos;
                          bin b Ir.Insn.Eq r_a r_cell (imm 1);
                          if_ b r_a
                            (fun b -> li b (Ir.Reg.arg 1) 1)
                            (fun b -> li b (Ir.Reg.arg 1) (-1));
                          call b "spread_influence";
                          bin b Ir.Insn.Add r_acc r_acc (reg r_libs))))));
      (* capture search: flood-fill each stone's group with an explicit
         worklist (go engines spend much of their time in exactly this kind
         of irregular, pointer-chasing group analysis) *)
      let visited = alloc pb board_cells in
      let worklist = alloc pb board_cells in
      let r_wl = t9 in
      let r_grp = t10 in
      for_ b r_pos ~from:(imm (dim + 1)) ~below:(imm (board_cells - dim - 1))
        ~step:1 (fun b ->
          load_at b ~dst:r_cell ~base:board ~index:r_pos ~scratch:r_a;
          bin b Ir.Insn.Eq r_a r_cell (imm 1);
          load_at b ~dst:r_n ~base:visited ~index:r_pos ~scratch:r_inf;
          bin b Ir.Insn.Eq r_n r_n (imm 0);
          bin b Ir.Insn.And r_a r_a (reg r_n);
          when_ b r_a (fun b ->
              (* flood fill the black group starting here *)
              li b r_wl 0;
              li b r_grp 0;
              store_at b ~src:r_pos ~base:worklist ~index:r_wl ~scratch:r_a;
              addi b r_wl r_wl 1;
              li b r_n 1;
              store_at b ~src:r_n ~base:visited ~index:r_pos ~scratch:r_a;
              while_ b
                ~cond:(fun b ->
                  bin b Ir.Insn.Gt r_a r_wl (imm 0);
                  r_a)
                (fun b ->
                  addi b r_wl r_wl (-1);
                  load_at b ~dst:r_n ~base:worklist ~index:r_wl ~scratch:r_a;
                  addi b r_grp r_grp 1;
                  let neighbour off b =
                    addi b r_inf r_n off;
                    load_at b ~dst:r_cell ~base:board ~index:r_inf ~scratch:r_a;
                    bin b Ir.Insn.Eq r_cell r_cell (imm 1);
                    addi b r_inf r_n off;
                    load_at b ~dst:r_libs ~base:visited ~index:r_inf
                      ~scratch:r_a;
                    bin b Ir.Insn.Eq r_libs r_libs (imm 0);
                    bin b Ir.Insn.And r_cell r_cell (reg r_libs);
                    when_ b r_cell (fun b ->
                        addi b r_inf r_n off;
                        store_at b ~src:r_inf ~base:worklist ~index:r_wl
                          ~scratch:r_a;
                        addi b r_wl r_wl 1;
                        li b r_libs 1;
                        addi b r_inf r_n off;
                        store_at b ~src:r_libs ~base:visited ~index:r_inf
                          ~scratch:r_a)
                  in
                  neighbour (-1) b;
                  neighbour 1 b;
                  neighbour (-dim) b;
                  neighbour dim b);
              (* large groups weigh more *)
              bin b Ir.Insn.Mul r_grp r_grp (reg r_grp);
              bin b Ir.Insn.Add r_acc r_acc (reg r_grp)));
      mov b Ir.Reg.rv r_acc;
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "go";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "board evaluation with irregular branching (099.go)";
  }
