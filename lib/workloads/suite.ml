(** The full benchmark suite, mirroring the SPEC95 programs of the paper's
    Figure 5 / Table 1 (gcc appears as "cc", as in the paper's figure). *)

let integer =
  [
    W_go.entry;
    W_m88ksim.entry;
    W_cc.entry;
    W_compress.entry;
    W_li.entry;
    W_ijpeg.entry;
    W_perl.entry;
    W_vortex.entry;
  ]

let floating =
  [
    W_tomcatv.entry;
    W_swim.entry;
    W_su2cor.entry;
    W_hydro2d.entry;
    W_mgrid.entry;
    W_applu.entry;
    W_turb3d.entry;
    W_apsi.entry;
    W_fpppp.entry;
    W_wave5.entry;
  ]

let all = integer @ floating

let find name =
  match List.find_opt (fun e -> String.equal e.Registry.name name) all with
  | Some e -> e
  | None -> raise Not_found

let names () = List.map (fun e -> e.Registry.name) all
