(* 125.turb3d analogue: turbulence simulation dominated by FFT butterflies.

   Structural features mirrored: log-stage loops with power-of-two strides,
   complex (re/im) butterfly arithmetic in medium fp blocks, and a
   pointwise nonlinear term between transforms. *)

open Ir.Builder
open Util

let size = 64 (* power of two *)
let log2_size = 6
let rounds = 4

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let re = data_floats pb (floats ~seed:(0x7B1 + input_salt) ~n:size) in
  let im = data_floats pb (floats ~seed:(0x7B2 + input_salt) ~n:size) in
  let r_r = t0 in
  let r_stage = t1 in
  let r_half = t2 in
  let r_grp = t3 in
  let r_k = t4 in
  let r_a = t5 in
  let r_i1 = t6 in
  let r_i2 = t7 in
  let r_full = t8 in
  let f x = Ir.Reg.tmp (16 + x) in
  func pb "main" (fun b ->
      for_ b r_r ~from:(imm 0) ~below:(imm rounds) ~step:1 (fun b ->
          (* FFT-like stages *)
          li b r_half 1;
          for_ b r_stage ~from:(imm 0) ~below:(imm log2_size) ~step:1 (fun b ->
              bin b Ir.Insn.Shl r_full r_half (imm 1);
              li b r_grp 0;
              while_ b
                ~cond:(fun b ->
                  bin b Ir.Insn.Lt r_a r_grp (imm size);
                  r_a)
                (fun b ->
                  for_ b r_k ~from:(imm 0) ~below:(reg r_half) ~step:1 (fun b ->
                      bin b Ir.Insn.Add r_i1 r_grp (reg r_k);
                      bin b Ir.Insn.Add r_i2 r_i1 (reg r_half);
                      (* twiddle approximated by a data-independent rotation *)
                      addi b r_a r_i1 re;
                      load b (f 0) r_a 0;
                      addi b r_a r_i1 im;
                      load b (f 1) r_a 0;
                      addi b r_a r_i2 re;
                      load b (f 2) r_a 0;
                      addi b r_a r_i2 im;
                      load b (f 3) r_a 0;
                      lf b (f 4) 0.92387953;
                      lf b (f 5) 0.38268343;
                      fbin b Ir.Insn.Fmul (f 6) (f 2) (f 4);
                      fbin b Ir.Insn.Fmul (f 7) (f 3) (f 5);
                      fbin b Ir.Insn.Fsub (f 6) (f 6) (f 7);
                      fbin b Ir.Insn.Fmul (f 7) (f 2) (f 5);
                      fbin b Ir.Insn.Fmul (f 8) (f 3) (f 4);
                      fbin b Ir.Insn.Fadd (f 7) (f 7) (f 8);
                      fbin b Ir.Insn.Fadd (f 9) (f 0) (f 6);
                      fbin b Ir.Insn.Fadd (f 10) (f 1) (f 7);
                      fbin b Ir.Insn.Fsub (f 11) (f 0) (f 6);
                      fbin b Ir.Insn.Fsub (f 12) (f 1) (f 7);
                      addi b r_a r_i1 re;
                      store b (f 9) r_a 0;
                      addi b r_a r_i1 im;
                      store b (f 10) r_a 0;
                      addi b r_a r_i2 re;
                      store b (f 11) r_a 0;
                      addi b r_a r_i2 im;
                      store b (f 12) r_a 0);
                  bin b Ir.Insn.Add r_grp r_grp (reg r_full));
              bin b Ir.Insn.Shl r_half r_half (imm 1));
          (* pointwise nonlinear damping between rounds *)
          for_ b r_k ~from:(imm 0) ~below:(imm size) ~step:1 (fun b ->
              addi b r_a r_k re;
              load b (f 0) r_a 0;
              addi b r_a r_k im;
              load b (f 1) r_a 0;
              fbin b Ir.Insn.Fmul (f 2) (f 0) (f 0);
              fbin b Ir.Insn.Fmul (f 3) (f 1) (f 1);
              fbin b Ir.Insn.Fadd (f 2) (f 2) (f 3);
              lf b (f 3) 1.0;
              fbin b Ir.Insn.Fadd (f 2) (f 2) (f 3);
              fbin b Ir.Insn.Fdiv (f 0) (f 0) (f 2);
              fbin b Ir.Insn.Fdiv (f 1) (f 1) (f 2);
              addi b r_a r_k re;
              store b (f 0) r_a 0;
              addi b r_a r_k im;
              store b (f 1) r_a 0));
      (* checksum *)
      lf b (f 0) 0.0;
      for_ b r_k ~from:(imm 0) ~below:(imm size) ~step:1 (fun b ->
          addi b r_a r_k re;
          load b (f 1) r_a 0;
          funop b Ir.Insn.Fabs (f 1) (f 1);
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 100000.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "turb3d";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "FFT butterfly stages with nonlinear damping (125.turb3d)";
  }
