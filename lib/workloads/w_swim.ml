(* 102.swim analogue: shallow-water equations on a 2-D grid.

   Structural features mirrored: three independent stencil sweeps per time
   step (calc1/calc2/calc3 in the original) over separate field arrays, each
   with a large straight-line fp body and no internal branching. *)

open Ir.Builder
open Util

let n = 16
let steps = 3

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let u = data_floats pb (floats ~seed:(0x5A1 + input_salt) ~n:(n * n)) in
  let v = data_floats pb (floats ~seed:(0x5A2 + input_salt) ~n:(n * n)) in
  let p = data_floats pb (floats ~seed:(0x5A3 + input_salt) ~n:(n * n)) in
  let cu = alloc pb (n * n) in
  let cv = alloc pb (n * n) in
  let z = alloc pb (n * n) in
  let r_t = t0 in
  let r_j = t1 in
  let r_i = t2 in
  let r_idx = t3 in
  let r_a = t4 in
  let f k = Ir.Reg.tmp (16 + k) in
  let fhalf = f 14 in
  let fdt = f 15 in
  let interior b body =
    for_ b r_j ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
        for_ b r_i ~from:(imm 1) ~below:(imm (n - 1)) ~step:1 (fun b ->
            bin b Ir.Insn.Mul r_idx r_j (imm n);
            bin b Ir.Insn.Add r_idx r_idx (reg r_i);
            body b))
  in
  func pb "main" (fun b ->
      lf b fhalf 0.5;
      lf b fdt 0.02;
      for_ b r_t ~from:(imm 0) ~below:(imm steps) ~step:1 (fun b ->
          (* calc1: mass fluxes cu, cv *)
          interior b (fun b ->
              addi b r_a r_idx p;
              load b (f 0) r_a 0;
              load b (f 1) r_a 1;
              load b (f 2) r_a n;
              addi b r_a r_idx u;
              load b (f 3) r_a 0;
              addi b r_a r_idx v;
              load b (f 4) r_a 0;
              fbin b Ir.Insn.Fadd (f 5) (f 0) (f 1);
              fbin b Ir.Insn.Fmul (f 5) (f 5) fhalf;
              fbin b Ir.Insn.Fmul (f 5) (f 5) (f 3);
              addi b r_a r_idx cu;
              store b (f 5) r_a 0;
              fbin b Ir.Insn.Fadd (f 6) (f 0) (f 2);
              fbin b Ir.Insn.Fmul (f 6) (f 6) fhalf;
              fbin b Ir.Insn.Fmul (f 6) (f 6) (f 4);
              addi b r_a r_idx cv;
              store b (f 6) r_a 0);
          (* calc2: vorticity-like field z *)
          interior b (fun b ->
              addi b r_a r_idx u;
              load b (f 0) r_a 0;
              load b (f 1) r_a (-n);
              addi b r_a r_idx v;
              load b (f 2) r_a 0;
              load b (f 3) r_a (-1);
              fbin b Ir.Insn.Fsub (f 4) (f 2) (f 3);
              fbin b Ir.Insn.Fsub (f 5) (f 0) (f 1);
              fbin b Ir.Insn.Fsub (f 4) (f 4) (f 5);
              addi b r_a r_idx p;
              load b (f 6) r_a 0;
              fbin b Ir.Insn.Fadd (f 6) (f 6) (f 6);
              fbin b Ir.Insn.Fdiv (f 4) (f 4) (f 6);
              addi b r_a r_idx z;
              store b (f 4) r_a 0);
          (* calc3: time update of u, v, p from the fluxes *)
          interior b (fun b ->
              addi b r_a r_idx cu;
              load b (f 0) r_a 0;
              load b (f 1) r_a (-1);
              addi b r_a r_idx cv;
              load b (f 2) r_a 0;
              load b (f 3) r_a (-n);
              addi b r_a r_idx z;
              load b (f 4) r_a 0;
              addi b r_a r_idx u;
              load b (f 5) r_a 0;
              addi b r_a r_idx v;
              load b (f 6) r_a 0;
              addi b r_a r_idx p;
              load b (f 7) r_a 0;
              fbin b Ir.Insn.Fsub (f 8) (f 0) (f 1);
              fbin b Ir.Insn.Fmul (f 8) (f 8) fdt;
              fbin b Ir.Insn.Fadd (f 5) (f 5) (f 8);
              addi b r_a r_idx u;
              store b (f 5) r_a 0;
              fbin b Ir.Insn.Fsub (f 9) (f 2) (f 3);
              fbin b Ir.Insn.Fmul (f 9) (f 9) fdt;
              fbin b Ir.Insn.Fmul (f 9) (f 9) (f 4);
              fbin b Ir.Insn.Fadd (f 6) (f 6) (f 9);
              addi b r_a r_idx v;
              store b (f 6) r_a 0;
              fbin b Ir.Insn.Fadd (f 10) (f 8) (f 9);
              fbin b Ir.Insn.Fmul (f 10) (f 10) fhalf;
              fbin b Ir.Insn.Fsub (f 7) (f 7) (f 10);
              addi b r_a r_idx p;
              store b (f 7) r_a 0));
      (* checksum over p's diagonal *)
      lf b (f 0) 0.0;
      for_ b r_i ~from:(imm 0) ~below:(imm n) ~step:1 (fun b ->
          bin b Ir.Insn.Mul r_idx r_i (imm (n + 1));
          addi b r_a r_idx p;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 1000.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "swim";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "shallow-water stencil sweeps (102.swim)";
  }
