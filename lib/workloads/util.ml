module Lcg = struct
  type t = { mutable state : int }

  let create seed = { state = (seed lor 1) land 0x3FFFFFFF }

  let next t =
    t.state <- (t.state * 1103515245 + 12345) land 0x3FFFFFFF;
    t.state

  (* multiply-shift on the high bits: the low bits of an LCG cycle with
     tiny periods (low bit k has period 2^k), so [mod] would make every
     bounded stream periodic *)
  let below t n = if n <= 0 then 0 else (next t * n) lsr 30

  let float01 t = float_of_int (next t) /. float_of_int 0x40000000
end

let ints ~seed ~n ~bound =
  let g = Lcg.create seed in
  List.init n (fun _ -> Lcg.below g bound)

let floats ~seed ~n =
  let g = Lcg.create seed in
  List.init n (fun _ -> Lcg.float01 g)

let t0 = Ir.Reg.tmp 0
let t1 = Ir.Reg.tmp 1
let t2 = Ir.Reg.tmp 2
let t3 = Ir.Reg.tmp 3
let t4 = Ir.Reg.tmp 4
let t5 = Ir.Reg.tmp 5
let t6 = Ir.Reg.tmp 6
let t7 = Ir.Reg.tmp 7
let t8 = Ir.Reg.tmp 8
let t9 = Ir.Reg.tmp 9
let t10 = Ir.Reg.tmp 10
let t11 = Ir.Reg.tmp 11
let t12 = Ir.Reg.tmp 12
let t13 = Ir.Reg.tmp 13
let t14 = Ir.Reg.tmp 14
let t15 = Ir.Reg.tmp 15

let imm n = Ir.Insn.Imm n
let reg r = Ir.Insn.Reg r

let push b r =
  Ir.Builder.addi b Ir.Reg.sp Ir.Reg.sp (-1);
  Ir.Builder.store b r Ir.Reg.sp 0

let pop b r =
  Ir.Builder.load b r Ir.Reg.sp 0;
  Ir.Builder.addi b Ir.Reg.sp Ir.Reg.sp 1

let load_at b ~dst ~base ~index ~scratch =
  Ir.Builder.addi b scratch index base;
  Ir.Builder.load b dst scratch 0

let store_at b ~src ~base ~index ~scratch =
  Ir.Builder.addi b scratch index base;
  Ir.Builder.store b src scratch 0
