(* 130.li analogue: list processing over a cons-cell arena.

   Structural features mirrored: pointer-chasing through car/cdr cells,
   recursive list walks (sum), an allocator bump pointer, and a mark phase
   with an explicit work stack — xlisp's small-block, dependent-load
   profile. *)

open Ir.Builder
open Util

let arena_cells = 4096
let list_len = 180
let rounds = 14

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  (* cons arena: parallel car/cdr arrays; cdr = 0 terminates (cell 0 is
     reserved as nil) *)
  let car = alloc pb arena_cells in
  let cdr = alloc pb arena_cells in
  let mark = alloc pb arena_cells in
  let free_ptr = alloc pb 1 in
  let roots = alloc pb rounds in
  let r_p = t0 in
  let r_v = t1 in
  let r_a = t2 in
  let r_new = t3 in
  let r_head = t4 in
  let r_i = t5 in
  let r_acc = t6 in
  let r_sp2 = t7 in (* explicit mark-stack pointer *)
  let r_r = t8 in
  (* cons: a0 = car value, a1 = cdr pointer; rv = new cell index *)
  func pb "cons" (fun b ->
      li b r_a free_ptr;
      load b r_new r_a 0;
      store_at b ~src:(Ir.Reg.arg 0) ~base:car ~index:r_new ~scratch:r_a;
      store_at b ~src:(Ir.Reg.arg 1) ~base:cdr ~index:r_new ~scratch:r_a;
      mov b Ir.Reg.rv r_new;
      addi b r_new r_new 1;
      li b r_a free_ptr;
      store b r_new r_a 0;
      ret b);
  (* sum_list: a0 = list head; rv = sum of cars (recursive) *)
  func pb "sum_list" (fun b ->
      bin b Ir.Insn.Eq r_a (Ir.Reg.arg 0) (imm 0);
      if_ b r_a
        (fun b ->
          li b Ir.Reg.rv 0;
          ret b)
        (fun b ->
          load_at b ~dst:r_v ~base:car ~index:(Ir.Reg.arg 0) ~scratch:r_a;
          load_at b ~dst:r_p ~base:cdr ~index:(Ir.Reg.arg 0) ~scratch:r_a;
          push b r_v;
          mov b (Ir.Reg.arg 0) r_p;
          call b "sum_list";
          pop b r_v;
          bin b Ir.Insn.Add Ir.Reg.rv Ir.Reg.rv (reg r_v);
          ret b));
  (* mark_list: a0 = list head; iterative mark with an explicit stack *)
  func pb "mark_list" (fun b ->
      (* remember the stack base, then push the root *)
      mov b r_sp2 Ir.Reg.sp;
      push b (Ir.Reg.arg 0);
      ignore r_r;
      while_ b
        ~cond:(fun b ->
          bin b Ir.Insn.Ne r_a Ir.Reg.sp (reg r_sp2);
          r_a)
        (fun b ->
          pop b r_p;
          bin b Ir.Insn.Ne r_a r_p (imm 0);
          when_ b r_a (fun b ->
              load_at b ~dst:r_v ~base:mark ~index:r_p ~scratch:r_a;
              bin b Ir.Insn.Eq r_a r_v (imm 0);
              when_ b r_a (fun b ->
                  li b r_v 1;
                  store_at b ~src:r_v ~base:mark ~index:r_p ~scratch:r_a;
                  load_at b ~dst:r_v ~base:cdr ~index:r_p ~scratch:r_a;
                  push b r_v)));
      ret b);
  func pb "main" (fun b ->
      (* initialise the bump pointer past nil *)
      li b r_v 1;
      li b r_a free_ptr;
      store b r_v r_a 0;
      li b r_acc input_salt;
      for_ b r_i ~from:(imm 0) ~below:(imm rounds) ~step:1 (fun b ->
          (* build a list of list_len cells: values i, i+1, ... *)
          li b r_head 0;
          for_ b r_v ~from:(imm 0) ~below:(imm list_len) ~step:1 (fun b ->
              bin b Ir.Insn.Add (Ir.Reg.arg 0) r_v (reg r_i);
              mov b (Ir.Reg.arg 1) r_head;
              call b "cons";
              mov b r_head Ir.Reg.rv);
          store_at b ~src:r_head ~base:roots ~index:r_i ~scratch:r_a;
          (* sum it recursively *)
          mov b (Ir.Reg.arg 0) r_head;
          call b "sum_list";
          bin b Ir.Insn.Xor r_acc r_acc (reg Ir.Reg.rv);
          (* mark it *)
          mov b (Ir.Reg.arg 0) r_head;
          call b "mark_list");
      (* count marked cells into the checksum *)
      li b r_v 0;
      for_ b r_i ~from:(imm 0) ~below:(imm arena_cells) ~step:1 (fun b ->
          load_at b ~dst:r_a ~base:mark ~index:r_i ~scratch:r_a;
          bin b Ir.Insn.Add r_v r_v (reg r_a));
      bin b Ir.Insn.Add r_acc r_acc (reg r_v);
      (* eval phase: interpret the root lists as right-leaning expression
         spines — car = operand, spine depth selects add/sub/xor — the
         recursive eval that dominates xlisp's execution profile *)
      for_ b r_i ~from:(imm 0) ~below:(imm rounds) ~step:1 (fun b ->
          load_at b ~dst:(Ir.Reg.arg 0) ~base:roots ~index:r_i ~scratch:r_a;
          li b (Ir.Reg.arg 1) 0;
          call b "eval_spine";
          bin b Ir.Insn.Xor r_acc r_acc (reg Ir.Reg.rv));
      mov b Ir.Reg.rv r_acc;
      ret b);
  (* eval_spine: a0 = cell, a1 = depth; rv = folded value (recursive) *)
  func pb "eval_spine" (fun b ->
      bin b Ir.Insn.Eq r_a (Ir.Reg.arg 0) (imm 0);
      if_ b r_a
        (fun b ->
          li b Ir.Reg.rv 1;
          ret b)
        (fun b ->
          load_at b ~dst:r_v ~base:car ~index:(Ir.Reg.arg 0) ~scratch:r_a;
          load_at b ~dst:r_p ~base:cdr ~index:(Ir.Reg.arg 0) ~scratch:r_a;
          push b r_v;
          push b (Ir.Reg.arg 1);
          mov b (Ir.Reg.arg 0) r_p;
          addi b (Ir.Reg.arg 1) (Ir.Reg.arg 1) 1;
          call b "eval_spine";
          pop b r_sp2;
          pop b r_v;
          (* op by depth mod 3 *)
          bin b Ir.Insn.Rem r_a r_sp2 (imm 3);
          switch_ b r_a
            [|
              (fun b -> bin b Ir.Insn.Add Ir.Reg.rv Ir.Reg.rv (reg r_v));
              (fun b -> bin b Ir.Insn.Sub Ir.Reg.rv Ir.Reg.rv (reg r_v));
              (fun b -> bin b Ir.Insn.Xor Ir.Reg.rv Ir.Reg.rv (reg r_v));
            |]
            ~default:(fun _ -> ());
          ret b));
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "li";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "cons-cell list building, recursion and marking (130.li)";
  }
