(* 129.compress analogue: an LZW-style compression kernel.

   Structural features mirrored from SPEC95 compress:
   - a hot outer loop over input bytes with *small* basic blocks;
   - a tight hash-probe inner loop (few instructions per iteration) — this is
     the loop the paper's task-size heuristic unrolls (compress is one of the
     two benchmarks that respond to it);
   - a loop-carried dependence through the previous-code register;
   - data-dependent branching on hash hits/misses. *)

open Ir.Builder
open Util

let input_size = 1500
let table_size = 512
let scratch_done = Util.t11

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let input = data_ints pb (ints ~seed:(0xC0113 + input_salt) ~n:input_size ~bound:64) in
  let keys = alloc pb table_size in
  let vals = alloc pb table_size in
  let output = alloc pb (input_size + 8) in
  let r_i = t0 in
  let r_c = t1 in
  let r_prev = t2 in
  let r_h = t3 in
  let r_sig = t4 in
  let r_key = t5 in
  let r_next_code = t6 in
  let r_outp = t7 in
  let r_acc = t8 in
  let r_a = t9 in
  let r_done = t10 in
  let r_filled = t12 in
  func pb "main" (fun b ->
      li b r_prev 1;
      li b r_next_code 256;
      li b r_outp 0;
      li b r_acc 0;
      li b r_filled 0;
      for_ b r_i ~from:(imm 0) ~below:(imm input_size) ~step:1 (fun b ->
          (* dictionary full: emit a CLEAR and rebuild, as real LZW does *)
          bin b Ir.Insn.Ge r_a r_filled (imm (table_size - 64));
          when_ b r_a (fun b ->
              for_ b r_h ~from:(imm 0) ~below:(imm table_size) ~step:1
                (fun b ->
                  store_at b ~src:Ir.Reg.zero ~base:keys ~index:r_h
                    ~scratch:r_a);
              li b r_filled 0;
              li b r_next_code 256;
              addi b r_acc r_acc 7);
          (* c = input[i] *)
          load_at b ~dst:r_c ~base:input ~index:r_i ~scratch:r_a;
          (* signature and initial hash *)
          bin b Ir.Insn.Shl r_sig r_prev (imm 6);
          bin b Ir.Insn.Xor r_sig r_sig (reg r_c);
          bin b Ir.Insn.And r_h r_sig (imm (table_size - 1));
          new_block b;
          (* probe loop: advance until empty slot or matching key *)
          li b r_done 0;
          while_ b
            ~cond:(fun b ->
              bin b Ir.Insn.Eq scratch_done r_done (imm 0);
              scratch_done)
            (fun b ->
              load_at b ~dst:r_key ~base:keys ~index:r_h ~scratch:r_a;
              bin b Ir.Insn.Eq r_a r_key (reg r_sig);
              if_ b r_a
                (fun b -> li b r_done 1 (* hit *))
                (fun b ->
                  bin b Ir.Insn.Eq r_a r_key (imm 0);
                  if_ b r_a
                    (fun b -> li b r_done 2 (* empty slot *))
                    (fun b ->
                      addi b r_h r_h 1;
                      bin b Ir.Insn.And r_h r_h (imm (table_size - 1)))));
          bin b Ir.Insn.Eq r_a r_done (imm 1);
          if_ b r_a
            (fun b ->
              (* hit: extend the phrase *)
              load_at b ~dst:r_prev ~base:vals ~index:r_h ~scratch:r_a;
              bin b Ir.Insn.Add r_acc r_acc (reg r_prev))
            (fun b ->
              (* miss: install, emit the previous code, restart phrase *)
              store_at b ~src:r_sig ~base:keys ~index:r_h ~scratch:r_a;
              store_at b ~src:r_next_code ~base:vals ~index:r_h ~scratch:r_a;
              addi b r_next_code r_next_code 1;
              addi b r_filled r_filled 1;
              store_at b ~src:r_prev ~base:output ~index:r_outp ~scratch:r_a;
              addi b r_outp r_outp 1;
              mov b r_prev r_c));
      (* decompression-style verification pass: walk the emitted codes,
         re-deriving each phrase's length through the value table (the
         original's decompress path re-walks its string table the same
         way), and fold everything into the checksum *)
      for_ b r_i ~from:(imm 0) ~below:(reg r_outp) ~step:1 (fun b ->
          load_at b ~dst:r_c ~base:output ~index:r_i ~scratch:r_a;
          (* chase the code through the table: codes >= 256 index phrases *)
          li b r_done 0;
          while_ b
            ~cond:(fun b ->
              bin b Ir.Insn.Ge scratch_done r_c (imm 256);
              bin b Ir.Insn.Lt r_a r_done (imm 8);
              bin b Ir.Insn.And scratch_done scratch_done (reg r_a);
              scratch_done)
            (fun b ->
              bin b Ir.Insn.And r_h r_c (imm (table_size - 1));
              load_at b ~dst:r_c ~base:vals ~index:r_h ~scratch:r_a;
              addi b r_done r_done 1);
          bin b Ir.Insn.Add r_acc r_acc (reg r_done);
          bin b Ir.Insn.Xor r_acc r_acc (reg r_c));
      (* checksum = acc ^ emitted-count ^ next_code *)
      bin b Ir.Insn.Xor Ir.Reg.rv r_acc (reg r_outp);
      bin b Ir.Insn.Xor Ir.Reg.rv Ir.Reg.rv (reg r_next_code);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "compress";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "LZW-style hash-probe compression loop (129.compress)";
  }
