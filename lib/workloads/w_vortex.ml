(* 147.vortex analogue: an object store with a binary-search-tree index.

   Structural features mirrored: transaction loop mixing inserts and
   lookups, pointer-chasing tree descents with unpredictable left/right
   branches, record field accesses, and moderate-size functions — vortex's
   pointer-rich object-database behaviour. *)

open Ir.Builder
open Util

let max_nodes = 1024
let transactions = 900

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  (* tree node arrays: key, left, right (0 = null; node ids start at 1);
     record payload: two fields per node *)
  let key = alloc pb (max_nodes + 1) in
  let left = alloc pb (max_nodes + 1) in
  let right = alloc pb (max_nodes + 1) in
  let field_a = alloc pb (max_nodes + 1) in
  let field_b = alloc pb (max_nodes + 1) in
  let node_count = alloc pb 1 in
  let root = alloc pb 1 in
  let ops = data_ints pb (ints ~seed:(0x40B7 + input_salt) ~n:transactions ~bound:4096) in
  let r_i = t0 in
  let r_op = t1 in
  let r_key = t2 in
  let r_cur = t3 in
  let r_a = t4 in
  let r_k = t5 in
  let r_prev = t6 in
  let r_dir = t7 in
  let r_new = t8 in
  let r_acc = t9 in
  let r_f = t10 in
  (* insert: a0 = key.  Iterative BST descent, then node allocation. *)
  func pb "tree_insert" (fun b ->
      li b r_a root;
      load b r_cur r_a 0;
      bin b Ir.Insn.Eq r_a r_cur (imm 0);
      if_ b r_a
        (fun b ->
          (* empty tree: allocate the root *)
          li b r_a node_count;
          load b r_new r_a 0;
          addi b r_new r_new 1;
          store b r_new r_a 0;
          store_at b ~src:(Ir.Reg.arg 0) ~base:key ~index:r_new ~scratch:r_a;
          li b r_a root;
          store b r_new r_a 0;
          ret b)
        (fun b ->
          li b r_prev 0;
          li b r_dir 0;
          while_ b
            ~cond:(fun b ->
              bin b Ir.Insn.Ne r_a r_cur (imm 0);
              r_a)
            (fun b ->
              load_at b ~dst:r_k ~base:key ~index:r_cur ~scratch:r_a;
              bin b Ir.Insn.Eq r_a r_k (reg (Ir.Reg.arg 0));
              if_ b r_a
                (fun b ->
                  (* duplicate: touch the record instead *)
                  load_at b ~dst:r_f ~base:field_a ~index:r_cur ~scratch:r_a;
                  addi b r_f r_f 1;
                  store_at b ~src:r_f ~base:field_a ~index:r_cur ~scratch:r_a;
                  ret b)
                (fun b ->
                  mov b r_prev r_cur;
                  bin b Ir.Insn.Lt r_dir (Ir.Reg.arg 0) (reg r_k);
                  if_ b r_dir
                    (fun b ->
                      load_at b ~dst:r_cur ~base:left ~index:r_cur ~scratch:r_a)
                    (fun b ->
                      load_at b ~dst:r_cur ~base:right ~index:r_cur
                        ~scratch:r_a)));
          (* attach a new node under r_prev *)
          li b r_a node_count;
          load b r_new r_a 0;
          bin b Ir.Insn.Ge r_k r_new (imm max_nodes);
          when_ b r_k (fun b -> ret b);
          addi b r_new r_new 1;
          store b r_new r_a 0;
          store_at b ~src:(Ir.Reg.arg 0) ~base:key ~index:r_new ~scratch:r_a;
          load_at b ~dst:r_k ~base:key ~index:r_prev ~scratch:r_a;
          bin b Ir.Insn.Lt r_dir (Ir.Reg.arg 0) (reg r_k);
          if_ b r_dir
            (fun b -> store_at b ~src:r_new ~base:left ~index:r_prev ~scratch:r_a)
            (fun b ->
              store_at b ~src:r_new ~base:right ~index:r_prev ~scratch:r_a);
          ret b));
  (* lookup: a0 = key; rv = node id or 0 *)
  func pb "tree_lookup" (fun b ->
      li b r_a root;
      load b r_cur r_a 0;
      li b Ir.Reg.rv 0;
      while_ b
        ~cond:(fun b ->
          bin b Ir.Insn.Ne r_a r_cur (imm 0);
          r_a)
        (fun b ->
          load_at b ~dst:r_k ~base:key ~index:r_cur ~scratch:r_a;
          bin b Ir.Insn.Eq r_a r_k (reg (Ir.Reg.arg 0));
          if_ b r_a
            (fun b ->
              mov b Ir.Reg.rv r_cur;
              li b r_cur 0)
            (fun b ->
              bin b Ir.Insn.Lt r_a (Ir.Reg.arg 0) (reg r_k);
              if_ b r_a
                (fun b ->
                  load_at b ~dst:r_cur ~base:left ~index:r_cur ~scratch:r_a)
                (fun b ->
                  load_at b ~dst:r_cur ~base:right ~index:r_cur ~scratch:r_a)));
      ret b);
  func pb "main" (fun b ->
      li b r_acc 0;
      for_ b r_i ~from:(imm 0) ~below:(imm transactions) ~step:1 (fun b ->
          load_at b ~dst:r_op ~base:ops ~index:r_i ~scratch:r_a;
          (* action and key come from disjoint bits of the transaction *)
          bin b Ir.Insn.Shr r_key r_op (imm 2);
          bin b Ir.Insn.And r_key r_key (imm 1023);
          bin b Ir.Insn.And r_a r_op (imm 3);
          bin b Ir.Insn.Eq r_a r_a (imm 0);
          if_ b r_a
            (fun b ->
              (* 25% inserts *)
              mov b (Ir.Reg.arg 0) r_key;
              call b "tree_insert")
            (fun b ->
              (* 75% lookups updating a record field on hit *)
              mov b (Ir.Reg.arg 0) r_key;
              call b "tree_lookup";
              bin b Ir.Insn.Ne r_a Ir.Reg.rv (imm 0);
              when_ b r_a (fun b ->
                  mov b r_cur Ir.Reg.rv;
                  load_at b ~dst:r_f ~base:field_b ~index:r_cur ~scratch:r_a;
                  bin b Ir.Insn.Add r_f r_f (reg r_key);
                  store_at b ~src:r_f ~base:field_b ~index:r_cur ~scratch:r_a;
                  addi b r_acc r_acc 1)));
      (* report phase: an in-order traversal with an explicit stack summing
         every record's fields (vortex's transaction mix ends in exactly
         this kind of full-database sweep) *)
      li b r_f 0;
      li b r_a root;
      load b r_cur r_a 0;
      mov b r_prev Ir.Reg.sp (* remember the stack base *);
      li b r_dir 1;
      while_ b
        ~cond:(fun b ->
          bin b Ir.Insn.Ne r_new r_cur (imm 0);
          bin b Ir.Insn.Ne r_k Ir.Reg.sp (reg r_prev);
          bin b Ir.Insn.Or r_new r_new (reg r_k);
          r_new)
        (fun b ->
          bin b Ir.Insn.Ne r_new r_cur (imm 0);
          if_ b r_new
            (fun b ->
              (* descend left, pushing the spine *)
              push b r_cur;
              load_at b ~dst:r_cur ~base:left ~index:r_cur ~scratch:r_a)
            (fun b ->
              pop b r_cur;
              load_at b ~dst:r_k ~base:field_a ~index:r_cur ~scratch:r_a;
              bin b Ir.Insn.Add r_f r_f (reg r_k);
              load_at b ~dst:r_k ~base:field_b ~index:r_cur ~scratch:r_a;
              bin b Ir.Insn.And r_k r_k (imm 0xFFFF);
              bin b Ir.Insn.Add r_f r_f (reg r_k);
              load_at b ~dst:r_cur ~base:right ~index:r_cur ~scratch:r_a));
      bin b Ir.Insn.Add r_acc r_acc (reg r_f);
      (* checksum: hits + node count + report *)
      li b r_a node_count;
      load b r_k r_a 0;
      bin b Ir.Insn.Add Ir.Reg.rv r_acc (reg r_k);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "vortex";
    kind = `Int;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "object store with BST index transactions (147.vortex)";
  }
