(** Seeded, parameterized synthetic IR program generators.

    This is the corpus definition shared by the qcheck test suites
    ([test/gen.ml] is a thin shim over this module), the [msc fuzz]
    subcommand, the bench [fuzz] section and the daemon fuzz op: one
    generator family, spanning the structure space the partitioner and the
    static analyses must survive (call depth, loop-nest shape, branch
    density, switch fan-out, memory stride/aliasing, early returns).

    Programs are built through {!Ir.Builder}, so they are structurally valid
    by construction; every loop is counted with a constant bound and every
    division is guarded, so they terminate.  Generation is fully
    deterministic: [generate ~profile ~seed] depends only on its
    arguments. *)

module Profile : sig
  type t = {
    name : string;
    description : string;
    call_depth : int;  (** length of the non-recursive helper chain (0 = leaf programs) *)
    nest_depth : int;  (** max structural nesting depth in [main] *)
    op_budget : int;  (** construct budget for [main]'s body *)
    max_iters : int;  (** counted-loop trip bound (0 disables loops) *)
    branch_pct : int;  (** weight of if/when among constructs *)
    switch_fanout : int;  (** max switch arms (0 disables switches) *)
    mem_cells : int;  (** cells per scratch region; must be a power of two *)
    mem_stride : int;  (** element stride of region accesses *)
    regions : int;  (** distinct scratch regions *)
    alias : bool;  (** overlap the regions (aliased address spaces) *)
    early_ret_pct : int;  (** weight of guarded early returns *)
    straight_max : int;  (** straight-line run length bound *)
    use_float : bool;  (** mix in FP arithmetic, compares and conversions *)
  }

  val default : t
  (** Balanced mix mirroring the historical [test/gen.ml] generator. *)

  val all : t list
  (** The named corpus family, [default] first. *)

  val find : string -> t option
  (** Look up a profile of {!all} by name. *)
end

val program_seed : seed:int -> index:int -> int
(** Derive the per-program seed for position [index] of a corpus run rooted
    at [seed].  Shared by the CLI, bench and daemon drivers so the same
    [(seed, index)] always names the same program. *)

val generate : profile:Profile.t -> seed:int -> Ir.Prog.t
(** Deterministically generate one program.  The result passes
    {!Ir.Prog.validate} and terminates under {!Interp.Run.execute}. *)

val shrink_candidates : Ir.Prog.t -> Ir.Prog.t list
(** Structurally smaller variants of a program, most aggressive first:
    dropped helper functions (calls rewritten to fall through), collapsed
    branch/switch/call terminators, and dropped instruction runs.  Every
    candidate passes {!Ir.Prog.validate}; callers wanting semantic health
    (e.g. no use-before-def) must filter further.  Used by the fuzz
    minimizer's greedy shrink loop. *)
