(* 103.su2cor analogue: quark propagator on a flattened lattice.

   Structural features mirrored: loops over lattice sites with gathered
   neighbour accesses (precomputed index tables, as the original's
   vectorised gathers), fp multiply-add chains of moderate length, and a
   reduction loop. *)

open Ir.Builder
open Util

let sites = 256
let sweeps = 4

let gen_neighbors ~input_salt () =
  let g = Lcg.create (0x5C2 + input_salt) in
  List.init (sites * 2) (fun _ -> Lcg.below g sites)

let build ?(input = 0) () =
  let input_salt = input * 7919 in
  let pb = program () in
  let field = data_floats pb (floats ~seed:(0x5C0 + input_salt) ~n:sites) in
  let coupling = data_floats pb (floats ~seed:(0x5C1 + input_salt) ~n:sites) in
  let nbr = data_ints pb (gen_neighbors ~input_salt ()) in
  let out = alloc pb sites in
  let r_s = t0 in
  let r_i = t1 in
  let r_a = t2 in
  let r_n1 = t3 in
  let r_n2 = t4 in
  let f k = Ir.Reg.tmp (16 + k) in
  func pb "main" (fun b ->
      for_ b r_s ~from:(imm 0) ~below:(imm sweeps) ~step:1 (fun b ->
          (* propagate: out[i] = c[i]*f[i] + 0.3*(f[n1] + f[n2]) * c[i]^2 *)
          for_ b r_i ~from:(imm 0) ~below:(imm sites) ~step:1 (fun b ->
              bin b Ir.Insn.Shl r_a r_i (imm 1);
              addi b r_a r_a nbr;
              load b r_n1 r_a 0;
              load b r_n2 r_a 1;
              addi b r_a r_i field;
              load b (f 0) r_a 0;
              addi b r_a r_n1 field;
              load b (f 1) r_a 0;
              addi b r_a r_n2 field;
              load b (f 2) r_a 0;
              addi b r_a r_i coupling;
              load b (f 3) r_a 0;
              fbin b Ir.Insn.Fmul (f 4) (f 3) (f 0);
              fbin b Ir.Insn.Fadd (f 5) (f 1) (f 2);
              lf b (f 6) 0.3;
              fbin b Ir.Insn.Fmul (f 5) (f 5) (f 6);
              fbin b Ir.Insn.Fmul (f 7) (f 3) (f 3);
              fbin b Ir.Insn.Fmul (f 5) (f 5) (f 7);
              fbin b Ir.Insn.Fadd (f 4) (f 4) (f 5);
              addi b r_a r_i out;
              store b (f 4) r_a 0);
          (* normalise and write back: f[i] = out[i] / (1 + |out[i]|) *)
          for_ b r_i ~from:(imm 0) ~below:(imm sites) ~step:1 (fun b ->
              addi b r_a r_i out;
              load b (f 0) r_a 0;
              funop b Ir.Insn.Fabs (f 1) (f 0);
              lf b (f 2) 1.0;
              fbin b Ir.Insn.Fadd (f 1) (f 1) (f 2);
              fbin b Ir.Insn.Fdiv (f 0) (f 0) (f 1);
              addi b r_a r_i field;
              store b (f 0) r_a 0));
      (* correlation reduction *)
      lf b (f 0) 0.0;
      for_ b r_i ~from:(imm 0) ~below:(imm sites) ~step:1 (fun b ->
          addi b r_a r_i field;
          load b (f 1) r_a 0;
          fbin b Ir.Insn.Fmul (f 1) (f 1) (f 1);
          fbin b Ir.Insn.Fadd (f 0) (f 0) (f 1));
      lf b (f 1) 10000.0;
      fbin b Ir.Insn.Fmul (f 0) (f 0) (f 1);
      funop b Ir.Insn.Ftoi Ir.Reg.rv (f 0);
      ret b);
  finish pb ~main:"main"

let entry =
  {
    Registry.name = "su2cor";
    kind = `Fp;
    build = (fun () -> build ());
    build_alt = (fun () -> build ~input:1 ());
    description = "lattice gather and multiply-add sweeps (103.su2cor)";
  }
