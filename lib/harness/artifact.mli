(** The shared artifact store of the experiment engine.

    Every evaluation path (bench sections, CLI subcommands, report tables)
    needs the same expensive pipeline per [(workload, heuristic level)]:
    build the workload program, run {!Core.Partition.build} (which itself
    interprets the program for profiles), and interpret the partitioned
    program for the dynamic trace.  The store memoizes all three behind a
    structural key, so a full bench run computes each pipeline exactly once
    instead of once per section.

    The store is domain-safe: it is the synchronisation point for
    {!Pool}-parallel jobs.  Each key owns a private in-flight cell with
    its own mutex and condition variable; the first requester computes,
    later requesters block on that key's cell (not on a store-wide
    condvar) until the result lands, so concurrent requests never
    duplicate work and a landing never wakes waiters of unrelated keys.
    Repeated [get]s return the physically same plan and trace.

    On top of the pipeline artifacts the store also memoizes simulation
    statistics for {!Sim.Config.default} machine configurations (keyed by
    [(key, num_pus, in_order)]); these recorded results are what
    {!Job.results_of_store} exports as the machine-readable perf
    trajectory.  Each record carries its {!Sim.Account.t} cycle-attribution
    breakdown, so breakdown reports ({!Job.accounts_of_store},
    [msc breakdown], [bench/account.json]) are memoized alongside the
    traces for free. *)

type variant = {
  optimize : bool;    (** classical optimiser pipeline first *)
  if_convert : bool;  (** predication extension first *)
  schedule : bool;    (** register-communication scheduling *)
}

val base_variant : variant
(** All flags off — the paper's baseline compilation. *)

type key = {
  workload : string;
  level : Core.Heuristics.level;
  params : Core.Heuristics.params;
  profile_alt : bool;
      (** profile with the workload's alternative input
          ({!Workloads.Registry.entry}[.build_alt]) instead of itself *)
  variant : variant;
}

type artifact = {
  key : key;
  kind : Workloads.Registry.kind;
  plan : Core.Partition.plan;
  trace : Interp.Trace.t;  (** trace of [plan.prog] *)
}

type t

val create : unit -> t

val get :
  t ->
  ?params:Core.Heuristics.params ->
  ?profile_alt:bool ->
  ?variant:variant ->
  level:Core.Heuristics.level ->
  Workloads.Registry.entry ->
  artifact
(** Fetch or compute the pipeline artifact.  [params] defaults to
    {!Core.Heuristics.default}, [profile_alt] to [false], [variant] to
    {!base_variant}. *)

val prep : t -> artifact -> Sim.Engine.prep
(** Memoized {!Sim.Engine.prepare} of the artifact — the configuration-
    independent half of a simulation (task chop, register-communication
    analyses, layout), shared across every machine configuration swept
    against the same plan and trace. *)

val sim : t -> artifact -> num_pus:int -> in_order:bool -> Sim.Stats.t
(** Memoized [Sim.Engine.run_prepared] over the artifact's shared prep
    on the {!Sim.Config.default} machine with [num_pus] PUs.  Callers must
    treat the returned statistics as read-only: repeated calls share one
    record. *)

val builds : t -> int
(** Number of pipeline computations actually performed (cache misses) —
    the exactly-once property is [builds t = number of distinct keys]. *)

val sim_results : t -> (key * (int * bool) * Sim.Stats.t) list
(** Every simulation recorded by {!sim}, sorted deterministically
    (workload, level, params, profile, variant, PUs, issue discipline). *)

val traces : t -> (key * Interp.Trace.t) list
(** Every packed trace resident in the pipeline cache, sorted like
    {!sim_results} (without the machine axes). *)

val trace_bytes : t -> int
(** Total resident bytes of all cached packed traces
    ({!Interp.Trace.bytes} summed over {!traces}) — the store's dominant
    memory term. *)
