(* One domain per recommended core, never more: spawning extra domains on
   a machine the runtime reports as single-core costs ~2x wall time to
   minor-GC synchronisation between the oversubscribed domains. *)
let default_jobs () =
  match Sys.getenv_opt "HARNESS_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> j
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f items.(i) with
         | v -> results.(i) <- Some v
         | exception e ->
           ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    let domains =
      Array.init (min jobs n) (fun _ -> Domain.spawn worker)
    in
    Array.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> invalid_arg "Pool.map: lost result")
         results)
  end

let iter ?jobs f xs = ignore (map ?jobs f xs)
