let default_jobs () =
  let recommended = Domain.recommended_domain_count () in
  match Sys.getenv_opt "HARNESS_JOBS" with
  | None -> recommended
  | Some s when String.trim s = "" ->
    (* `HARNESS_JOBS= cmd` idiom: blank means unset *)
    recommended
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 ->
       (* one domain per recommended core, never more: oversubscription
          costs ~2x wall time in minor-GC synchronisation *)
       min j recommended
     | Some j ->
       failwith
         (Printf.sprintf
            "HARNESS_JOBS must be a positive integer, got %d" j)
     | None ->
       failwith
         (Printf.sprintf
            "HARNESS_JOBS must be a positive integer, got %S" s))

(* Resident scheduler per requested width, created lazily and reused
   across calls; at_exit unwinds them so parked worker domains cannot
   outlive the main domain. *)
let scheds : (int, Sched.t) Hashtbl.t = Hashtbl.create 4
let scheds_mu = Mutex.create ()
let cleanup_registered = ref false

let scheduler ~jobs =
  if jobs < 2 then invalid_arg "Pool.scheduler: jobs must be >= 2";
  Mutex.lock scheds_mu;
  let t =
    match Hashtbl.find_opt scheds jobs with
    | Some t -> t
    | None ->
      let t = Sched.create ~domains:jobs () in
      Hashtbl.replace scheds jobs t;
      if not !cleanup_registered then begin
        cleanup_registered := true;
        at_exit (fun () ->
            Mutex.lock scheds_mu;
            let all = Hashtbl.fold (fun _ t acc -> t :: acc) scheds [] in
            Hashtbl.reset scheds;
            Mutex.unlock scheds_mu;
            List.iter Sched.shutdown all)
      end;
      t
  in
  Mutex.unlock scheds_mu;
  t

(* The scheduler this call should run on: when the caller is already a
   scheduler worker, nested fan-outs go back into the same scheduler
   (its deques, its width) instead of spawning a second pool. *)
let enclosing () =
  Mutex.lock scheds_mu;
  let found =
    Hashtbl.fold
      (fun _ t acc ->
        match acc with
        | Some _ -> acc
        | None -> if Sched.on_worker t then Some t else None)
      scheds None
  in
  Mutex.unlock scheds_mu;
  found

let map ?jobs f xs =
  match enclosing () with
  | Some t -> Sched.map t f xs
  | None ->
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    (match xs with
     | [] | [ _ ] -> List.map f xs
     | _ when jobs <= 1 -> List.map f xs
     | _ -> Sched.map (scheduler ~jobs) f xs)

let iter ?jobs f xs = ignore (map ?jobs f xs)
