let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let pearson pts =
  match pts with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length pts) in
    let fold f = List.fold_left (fun a p -> a +. f p) 0.0 pts in
    let sx = fold fst and sy = fold snd in
    let sxx = fold (fun (x, _) -> x *. x)
    and syy = fold (fun (_, y) -> y *. y)
    and sxy = fold (fun (x, y) -> x *. y) in
    let cov = sxy -. (sx *. sy /. n) in
    let vx = sxx -. (sx *. sx /. n) and vy = syy -. (sy *. sy /. n) in
    if vx <= 0.0 || vy <= 0.0 then 0.0 else cov /. sqrt (vx *. vy)
