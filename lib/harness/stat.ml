let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Centered two-pass form: the textbook E[xy] - E[x]E[y] expansion loses
   all significance when a series is (nearly) constant — the subtraction
   of two large almost-equal sums can leave positive float dust where the
   true variance is zero, and the quotient then explodes instead of being
   caught by a <= 0 guard. *)
let pearson_opt pts =
  match pts with
  | [] | [ _ ] -> None
  | _ ->
    let n = float_of_int (List.length pts) in
    let fold f = List.fold_left (fun a p -> a +. f p) 0.0 pts in
    let mx = fold fst /. n and my = fold snd /. n in
    let vx = fold (fun (x, _) -> (x -. mx) *. (x -. mx))
    and vy = fold (fun (_, y) -> (y -. my) *. (y -. my))
    and cov = fold (fun (x, y) -> (x -. mx) *. (y -. my)) in
    if vx <= 0.0 || vy <= 0.0 then None
    else
      (* clamp: rounding can push a perfect correlation past +/-1 *)
      Some (Float.max (-1.0) (Float.min 1.0 (cov /. sqrt (vx *. vy))))

let pearson pts = match pearson_opt pts with Some r -> r | None -> 0.0
