let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Centered two-pass form: the textbook E[xy] - E[x]E[y] expansion loses
   all significance when a series is (nearly) constant — the subtraction
   of two large almost-equal sums can leave positive float dust where the
   true variance is zero, and the quotient then explodes instead of being
   caught by a <= 0 guard. *)
let pearson_opt pts =
  match pts with
  | [] | [ _ ] -> None
  | _ ->
    let n = float_of_int (List.length pts) in
    let fold f = List.fold_left (fun a p -> a +. f p) 0.0 pts in
    let mx = fold fst /. n and my = fold snd /. n in
    let vx = fold (fun (x, _) -> (x -. mx) *. (x -. mx))
    and vy = fold (fun (_, y) -> (y -. my) *. (y -. my))
    and cov = fold (fun (x, y) -> (x -. mx) *. (y -. my)) in
    if vx <= 0.0 || vy <= 0.0 then None
    else
      (* clamp: rounding can push a perfect correlation past +/-1 *)
      Some (Float.max (-1.0) (Float.min 1.0 (cov /. sqrt (vx *. vy))))

let pearson pts = match pearson_opt pts with Some r -> r | None -> 0.0

module Histogram = struct
  (* Fixed logarithmic buckets, 8 per octave: bucket 0 holds (-inf, 1],
     bucket i >= 1 holds (2^((i-1)/8), 2^(i/8)].  512 log buckets cover
     64 octaves — 1 to 1.8e19 — which spans any latency expressible in
     microseconds; everything above clamps into the last bucket.  The
     relative quantile error is bounded by the bucket width, 2^(1/8)
     (~9%), independent of sample count. *)
  let per_octave = 8
  let octaves = 64
  let nbuckets = 1 + (per_octave * octaves)

  type t = {
    counts : int array;
    mutable total : int;
    mutable minv : float;
    mutable maxv : float;
    mutable sum : float;
  }

  let create () =
    {
      counts = Array.make nbuckets 0;
      total = 0;
      minv = infinity;
      maxv = neg_infinity;
      sum = 0.0;
    }

  let index v =
    if v <= 1.0 then 0
    else
      let i = 1 + int_of_float (Float.floor (Float.log2 v *. float_of_int per_octave)) in
      if i >= nbuckets then nbuckets - 1 else i

  (* inclusive upper edge of bucket [i]; lower edge is [hi (i-1)] *)
  let hi i = Float.pow 2.0 (float_of_int i /. float_of_int per_octave)

  let add t v =
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.total <- t.total + 1;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v;
    t.sum <- t.sum +. v

  let count t = t.total
  let total_sum t = t.sum

  let merge a b =
    let t = create () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.total <- a.total + b.total;
    t.minv <- Float.min a.minv b.minv;
    t.maxv <- Float.max a.maxv b.maxv;
    t.sum <- a.sum +. b.sum;
    t

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank =
        max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total)))
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < nbuckets do
        seen := !seen + t.counts.(!i);
        incr i
      done;
      let b = !i - 1 in
      (* geometric bucket midpoint, clamped to the observed range so
         degenerate histograms (single sample) report exact values *)
      let mid =
        if b = 0 then hi 0 /. 2.0 else sqrt (hi (b - 1) *. hi b)
      in
      Float.max t.minv (Float.min t.maxv mid)
    end

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

  let to_json t =
    let quant p = Json.Float (percentile t p) in
    let buckets =
      let acc = ref [] in
      for i = nbuckets - 1 downto 0 do
        if t.counts.(i) > 0 then
          acc :=
            Json.Obj
              [
                ("le", Json.Float (hi i));
                ("count", Json.Int t.counts.(i));
              ]
            :: !acc
      done;
      !acc
    in
    Json.Obj
      [
        ("count", Json.Int t.total);
        ("min", Json.Float (if t.total = 0 then 0.0 else t.minv));
        ("max", Json.Float (if t.total = 0 then 0.0 else t.maxv));
        ("mean", Json.Float (mean t));
        ("p50", quant 50.0);
        ("p90", quant 90.0);
        ("p99", quant 99.0);
        ("buckets", Json.List buckets);
      ]
end
