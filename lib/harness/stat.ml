let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
