(** Small aggregate statistics shared by the bench summary and the job
    engine (previously duplicated as a private helper in [bench/main.ml]). *)

val geomean : float list -> float
(** Geometric mean; values are clamped below at [1e-9] (IPC ratios are
    positive, the clamp only guards degenerate zero rows) and the empty
    list yields [0.0]. *)

val mean : float list -> float
(** Arithmetic mean; empty list yields [0.0]. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient of [(x, y)] samples.  Fewer than two
    points, or zero variance on either axis, yields [0.0] (no linear
    relationship can be estimated). *)
