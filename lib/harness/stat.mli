(** Small aggregate statistics shared by the bench summary and the job
    engine (previously duplicated as a private helper in [bench/main.ml]). *)

val geomean : float list -> float
(** Geometric mean; values are clamped below at [1e-9] (IPC ratios are
    positive, the clamp only guards degenerate zero rows) and the empty
    list yields [0.0]. *)

val mean : float list -> float
(** Arithmetic mean; empty list yields [0.0]. *)

val pearson_opt : (float * float) list -> float option
(** Pearson correlation coefficient of [(x, y)] samples, computed in
    centered two-pass form (immune to the cancellation that makes the
    one-pass expansion return garbage on near-constant series) and clamped
    to [[-1, 1]].  [None] when no linear relationship can be estimated:
    fewer than two points, or zero variance on either axis. *)

val pearson : (float * float) list -> float
(** {!pearson_opt} with the undefined case collapsed to [0.0]. *)
