(** Small aggregate statistics shared by the bench summary and the job
    engine (previously duplicated as a private helper in [bench/main.ml]). *)

val geomean : float list -> float
(** Geometric mean; values are clamped below at [1e-9] (IPC ratios are
    positive, the clamp only guards degenerate zero rows) and the empty
    list yields [0.0]. *)

val mean : float list -> float
(** Arithmetic mean; empty list yields [0.0]. *)

val pearson_opt : (float * float) list -> float option
(** Pearson correlation coefficient of [(x, y)] samples, computed in
    centered two-pass form (immune to the cancellation that makes the
    one-pass expansion return garbage on near-constant series) and clamped
    to [[-1, 1]].  [None] when no linear relationship can be estimated:
    fewer than two points, or zero variance on either axis. *)

val pearson : (float * float) list -> float
(** {!pearson_opt} with the undefined case collapsed to [0.0]. *)

(** Fixed logarithmic latency histogram (8 buckets per octave, 64
    octaves above 1.0, one underflow bucket).  Quantiles are read from
    geometric bucket midpoints, so the relative error of any percentile
    is bounded by the bucket width [2^(1/8)] (~9%) regardless of sample
    count, and [merge] of two histograms is exact (bucket-wise sum).

    Not synchronised — callers that share a histogram across domains or
    threads must hold their own lock around [add]/[merge]/readers. *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one sample.  Values [<= 1.0] land in the underflow bucket;
    values beyond the 64-octave range clamp into the last bucket. *)

  val merge : t -> t -> t
  (** Exact bucket-wise sum; inputs are unchanged. *)

  val count : t -> int
  val mean : t -> float

  val total_sum : t -> float
  (** Sum of all recorded samples (exact, not bucketed). *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [[0, 100]] (clamped): the geometric
    midpoint of the bucket holding the rank-[ceil (p/100 * count)]
    sample, clamped to the observed min/max.  [0.0] when empty. *)

  val to_json : t -> Json.t
  (** [{"count", "min", "max", "mean", "p50", "p90", "p99", "buckets"}]
    where [buckets] lists the non-empty buckets as [{"le", "count"}]. *)
end
