(** Parallel fan-out facade over the resident {!Sched} work-stealing
    scheduler.

    [map] keeps its deterministic contract — results in input order, so
    parallel and serial runs are indistinguishable to the caller — but
    the execution engine is now a long-lived work-stealing scheduler:
    one scheduler per requested width is created on first use and reused
    for every subsequent call, so repeated experiment batches stop
    paying per-call domain spawns.  Calls made from {e inside} a pool
    task are routed to the caller's own scheduler (depth-first on the
    worker's deque, stealable by its siblings), which is how nested
    fan-outs such as figure5's entries x levels exploit the full width
    without oversubscribing.

    Width selection honours [HARNESS_JOBS] and is always clamped by
    [Domain.recommended_domain_count ()]: spawning more domains than the
    runtime recommends costs ~2x wall time in minor-GC synchronisation.
    [HARNESS_JOBS=1] is the serial path (no scheduler is touched and
    [map] degenerates to [List.map]). *)

val default_jobs : unit -> int
(** [HARNESS_JOBS] when set to a positive integer, clamped to
    [Domain.recommended_domain_count ()]; the recommended count when the
    variable is unset or blank (the [HARNESS_JOBS= cmd] idiom).  Raises
    [Failure] with a descriptive message when [HARNESS_JOBS] is set but
    non-numeric or < 1 — a malformed width request must not silently run
    at a different width. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs] across [jobs]
    (default {!default_jobs}) scheduler workers and returns the results
    in input order.  With [jobs <= 1] or fewer than two elements this is
    [List.map f xs] on the calling domain.  All elements are applied
    even if some raise; the lowest-index exception is then re-raised. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] is [map f xs] with unit results. *)

val scheduler : jobs:int -> Sched.t
(** The resident scheduler for width [jobs] (>= 2), creating it on first
    request.  Shared with {!map}; exposed so long-running services can
    submit directly and read {!Sched.stats}. *)
