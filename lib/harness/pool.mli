(** A domain pool for fanning independent experiment jobs across cores.

    Jobs are pulled from a shared work queue by [jobs] worker domains
    (OCaml 5 [Domain]s; no extra dependencies) and results are returned in
    input order, so parallel and serial runs are indistinguishable to the
    caller.  The pool is transient: domains are spawned per [map] call and
    joined before it returns — experiment batches are seconds long, so the
    ~30 µs spawn cost is noise.

    The default width honours the [HARNESS_JOBS] environment variable;
    [HARNESS_JOBS=1] is the serial fallback (no domains are spawned and
    [map] degenerates to [List.map]). *)

val default_jobs : unit -> int
(** [HARNESS_JOBS] when set to a positive integer, otherwise
    [max 2 (Domain.recommended_domain_count ())] — experiment batches run
    on more than one domain by default. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs] on [jobs] (default
    {!default_jobs}) worker domains and returns the results in input order.
    With [jobs <= 1] or fewer than two elements this is [List.map f xs] on
    the calling domain.  If any application raises, one such exception is
    re-raised after all workers have drained (remaining queued items are
    abandoned). *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] is [map f xs] with unit results. *)
