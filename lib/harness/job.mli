(** Declarative experiment jobs: [workload × heuristic level × machine
    configuration → result].

    A {!spec} names one simulation; {!run} fans a batch out over the
    {!Pool} domains, sharing pipeline work through an {!Artifact} store, and
    returns structured results in input order.  Results serialise to JSON
    ({!to_json} / {!of_json} round-trip) so the perf trajectory of the repo
    is machine-readable — the bench harness writes [bench/results.json] on
    every run. *)

type spec = {
  workload : string;  (** a {!Workloads.Suite} name *)
  level : Core.Heuristics.level;
  num_pus : int;
  in_order : bool;
}

type result = {
  spec : spec;
  kind : Workloads.Registry.kind;
  ipc : float;
  cycles : int;
  dyn_insns : int;
  tasks : int;
  task_size : float;        (** dynamic instructions per task *)
  ct_per_task : float;      (** control transfers per task *)
  task_mispredict : float;  (** % *)
  window_span : float;      (** measured, occupancy-weighted *)
}

val specs_for :
  ?levels:Core.Heuristics.level list ->
  ?configs:(int * bool) list ->
  string list ->
  spec list
(** Cartesian grid of workloads × levels × [(num_pus, in_order)] machine
    configurations.  Defaults: all four heuristic levels, the single
    8-PU out-of-order configuration. *)

val run : ?jobs:int -> Artifact.t -> spec list -> result list
(** Run a batch through the store on the domain pool.  Result order matches
    spec order; duplicate pipelines are computed once regardless of [jobs]
    (concurrent requesters of one key block until it lands). *)

val result_of_stats :
  spec -> kind:Workloads.Registry.kind -> Sim.Stats.t -> result

val level_tag : Core.Heuristics.level -> string
(** Stable wire tag of a heuristic level ([bb]/[cf]/[dd]/[ts]/[fb]) —
    the encoding used by every JSON export and the service protocol. *)

val level_of_tag : string -> (Core.Heuristics.level, string) Stdlib.result
(** Inverse of {!level_tag}; [Error] names the unknown tag. *)

val result_to_json : result -> Json.t
(** One result as the object {!to_json} emits per element — the payload
    shape shared by the JSON export and the service protocol. *)

val results_of_store : Artifact.t -> result list
(** The canonical perf trajectory recorded in a store: every memoized
    default-machine simulation whose pipeline used default parameters, the
    baseline variant and self-profiling, in deterministic order. *)

(** {1 Trace statistics}

    Alongside simulation results, a store holds the packed traces the
    pipelines produced; their memory statistics ride along in the JSON
    export as the "trace" section. *)

type trace_stat = {
  t_workload : string;
  t_level : Core.Heuristics.level;
  t_events : int;       (** dynamic block instances *)
  t_insns : int;        (** dynamic instructions *)
  t_addrs : int;        (** effective addresses recorded *)
  t_heap_words : int;   (** resident heap words, packed representation *)
  t_boxed_words : int;  (** what the legacy boxed layout would occupy *)
  t_bytes : int;        (** packed resident bytes *)
}

val trace_stat_of_trace :
  workload:string -> level:Core.Heuristics.level -> Interp.Trace.t -> trace_stat

val trace_stats_of_store : Artifact.t -> trace_stat list
(** Memory statistics of every cached packed trace built with default
    parameters, baseline variant and self-profiling, in deterministic
    order (the trace-side counterpart of {!results_of_store}). *)

(** {1 Cycle-accounting breakdowns}

    A store's memoized simulations carry their {!Sim.Account.t} breakdown
    inside the recorded statistics; these records expose them as jobs for
    the bench [account] section ([bench/account.json]) and the
    [msc breakdown] subcommand. *)

type account = {
  a_spec : spec;
  a_kind : Workloads.Registry.kind;
  a_acct : Sim.Account.t;
}

val account_of_stats :
  spec -> kind:Workloads.Registry.kind -> Sim.Stats.t -> account

val accounts_of_store : Artifact.t -> account list
(** Breakdown of every memoized default-machine simulation whose pipeline
    used default parameters, the baseline variant and self-profiling — same
    selection and order as {!results_of_store}. *)

val conserved : account -> bool
(** Does the record satisfy {!Sim.Account.check}? *)

(** {1 Static dependence summaries}

    Per-(workload, level) counts from the {!Core.Depend} static inter-task
    dependence analyzer, grounded against the dynamic trace: every observed
    cross-instance store→load flow ({!Sim.Memflow}) is checked against the
    static prediction.  Soundness means [d_predicted_hit = d_observed];
    the gap to [d_mem_edges] measures precision (predicted pairs that never
    materialise).  These records feed the bench [deps] section
    ([bench/deps.json]) and the [msc deps] subcommand. *)

(** One memory site in the [d_widest] precision ranking.  [w_width] is the
    number of distinct addresses the refined region admits, [-1] when the
    region is unbounded ({!Analysis.Memdep.width} returned [None]). *)
type wide_site = {
  w_fn : string;
  w_blk : int;
  w_idx : int;
  w_store : bool;
  w_width : int;
}

type dep = {
  d_workload : string;
  d_kind : Workloads.Registry.kind;
  d_level : Core.Heuristics.level;
  d_tasks : int;           (** static tasks across the plan *)
  d_reg_edges : int;       (** cross-task register def-use edges *)
  d_mem_edges : int;       (** predicted store-task → load-task pairs *)
  d_fi_mem_edges : int;    (** same, from the flow-insensitive baseline
                               regions ({!Analysis.Memdep.fi_sites}) — the
                               gap to [d_mem_edges] is what the
                               {!Analysis.Absint} refinement pruned *)
  d_store_sites : int;     (** static store sites the regions summarise *)
  d_load_sites : int;
  d_unbounded_sites : int; (** refined sites with no finite region width *)
  d_fi_unbounded_sites : int;  (** baseline sites with no finite width *)
  d_widest : wide_site list;   (** top-5 widest refined sites, widest first
                                   (unbounded outranks any finite width) *)
  d_observed : int;        (** distinct observed store→load task pairs *)
  d_predicted_hit : int;   (** observed pairs the analyzer predicted *)
  d_dyn_flows : int;       (** dynamic load occurrences behind [d_observed] *)
}

val precision_of_summary :
  Ir.Prog.t -> Analysis.Memdep.t -> int * int * wide_site list
(** [(unbounded, fi_unbounded, widest)] over every memory site of the
    program: refined and baseline sites with no finite region width, and
    the top-5 widest refined sites.  Shared by {!dep_of_artifact} and the
    precision report. *)

val dep_of_artifact : Artifact.artifact -> dep
(** Analyze the artifact's plan and replay its trace.  Not memoized — the
    analysis is cheap next to the pipeline that produced the artifact. *)

val dep_violations : dep -> int
(** [d_observed - d_predicted_hit]; non-zero means the static analysis is
    unsound on this workload (the [dep/sound] lint rule fires). *)

val deps_of_store : Artifact.t -> dep list
(** Dependence summary of every cached default-parameter pipeline, baseline
    variant and self-profiling — same selection and order as
    {!trace_stats_of_store}. *)

val dep_to_json : dep -> Json.t
(** Integer-only counts (plus the derived [violations]); ratio metrics are
    left to readers so golden snapshots stay float-free. *)

(** {1 Static cost predictions}

    Per-(workload, level) predicted cycle-account shares from the
    {!Core.Cost} static model — no simulation involved.  These records
    feed the bench [cost] section ([bench/cost.json]) and the [msc cost]
    subcommand; the report layer joins them against measured
    {!Sim.Account} shares on [(workload, level)]. *)

type cost = {
  co_workload : string;
  co_kind : Workloads.Registry.kind;
  co_level : Core.Heuristics.level;
  co_tasks : int;     (** static tasks across the plan *)
  co_scalar : float;  (** predicted penalties / useful-work base *)
  co_pred : Analysis.Cost.shares;
}

val cost_of_artifact : Artifact.artifact -> cost
(** Score the artifact's plan with {!Core.Cost.plan_cost}.  Not memoized —
    the model is cheap next to the pipeline that produced the artifact. *)

val cost_to_json : cost -> Json.t
(** The scalar and predicted shares as floats — cost goldens pin these
    bytes deliberately, a formatting drift is a model drift. *)

val account_to_json : account -> Json.t
(** Integer cycle counts per category plus the [budget] ([pus * cycles]);
    percentages are left to readers so golden snapshots stay float-free. *)

val accounts_to_json : account list -> Json.t
(** The [{"accounts": [...]}] object written to [bench/account.json]. *)

val export_accounts : path:string -> account list -> unit
(** Write {!accounts_to_json} to [path] (with a trailing newline). *)

(** {1 Fuzz corpus summaries}

    Per-profile aggregates of a differential fuzzing run ({!Fuzz} in
    [lib/fuzz]): how many generated programs went through which oracles and
    how many passed.  These ride along in [results.json] (and
    [bench/fuzz.json]) as the "fuzz" member, next to the trace/account/
    dep/cost records. *)

type fuzz = {
  z_seed : int;            (** corpus root seed *)
  z_profile : string;      (** {!Workloads.Synth.Profile} name *)
  z_programs : int;        (** programs generated under this profile *)
  z_levels : int;          (** heuristic levels each program went through *)
  z_lint_pass : int;       (** programs with ir/* + part/* + regcomm/* clean *)
  z_roundtrip_pass : int;  (** programs whose textual round-trip is exact *)
  z_trace_pass : int;      (** programs whose packed traces decode cleanly *)
  z_dep_pass : int;        (** programs with dep/sound + dep/reg clean *)
  z_absint_pass : int;     (** programs with absint/sound + absint/refines clean *)
  z_acct_pass : int;       (** programs with acct/conserve exact *)
  z_cost_pass : int;       (** programs with cost/conserve clean *)
  z_fb_bound_pass : int;   (** programs where fb static cost <= ts seed *)
  z_ref_checked : int;     (** programs given the sim_ref differential *)
  z_ref_pass : int;        (** ... of which were cycle-identical *)
  z_violations : int;      (** total oracle violations under this profile *)
}

val fuzz_to_json : fuzz -> Json.t
(** Integer-only counts, like accounts and deps. *)

val to_json : result list -> Json.t

val of_json : Json.t -> (result list, string) Stdlib.result
(** Accepts both export shapes: the legacy bare list of job results and the
    current [{"jobs": [...], ...}] object. *)

val export :
  path:string -> ?trace:trace_stat list -> ?fuzz:fuzz list -> result list ->
  unit
(** Write the results to [path] (with a trailing newline).  Without [trace]
    and [fuzz] the file is the legacy bare list; with either, an object
    with a "jobs" member plus a "trace" / "fuzz" member per given section
    (the dual-shape contract {!of_json} reads). *)
