type variant = {
  optimize : bool;
  if_convert : bool;
  schedule : bool;
}

let base_variant = { optimize = false; if_convert = false; schedule = false }

type key = {
  workload : string;
  level : Core.Heuristics.level;
  params : Core.Heuristics.params;
  profile_alt : bool;
  variant : variant;
}

type artifact = {
  key : key;
  kind : Workloads.Registry.kind;
  plan : Core.Partition.plan;
  trace : Interp.Trace.t;
}

(* Exactly-once memoization under work stealing: each key owns a cell
   with its own mutex/condvar.  The store mutex only guards table
   lookup-or-insert, so the winner of a key races nobody while it
   computes and a landing broadcasts only to waiters of that key —
   not, as the old single store-wide condvar did, to every waiter of
   every key.  Failures are cached too, so every requester of a key
   sees the same exception instead of re-running a computation that
   cannot succeed.

   Deadlock-freedom: the only cross-key waits go get -> prep -> sim
   (never backwards), so the wait graph is acyclic; and a cell is
   In_flight only while some domain is actively inside [compute] — a
   waiter never waits on work that is queued but unowned. *)
type 'a cell = {
  cmu : Mutex.t;
  ccond : Condition.t;
  mutable cst : 'a outcome;  (* guarded by [cmu] *)
}

and 'a outcome = In_flight | Landed of 'a | Crashed of exn

type t = {
  mu : Mutex.t;
  pipeline : (key, artifact cell) Hashtbl.t;
  (* configuration-independent Sim.Engine.prep per pipeline artifact,
     shared by every machine configuration simulated against it *)
  preps : (key, Sim.Engine.prep cell) Hashtbl.t;
  sims : (key * int * bool, Sim.Stats.t cell) Hashtbl.t;
  mutable pipeline_builds : int;
}

let create () =
  {
    mu = Mutex.create ();
    pipeline = Hashtbl.create 64;
    preps = Hashtbl.create 64;
    sims = Hashtbl.create 256;
    pipeline_builds = 0;
  }

let memo t tbl key ?(on_miss = fun () -> ()) compute =
  Mutex.lock t.mu;
  let cell, owner =
    match Hashtbl.find_opt tbl key with
    | Some c -> (c, false)
    | None ->
      let c =
        { cmu = Mutex.create (); ccond = Condition.create ();
          cst = In_flight }
      in
      Hashtbl.replace tbl key c;
      on_miss ();
      (c, true)
  in
  Mutex.unlock t.mu;
  if owner then begin
    let outcome = try Landed (compute ()) with e -> Crashed e in
    Mutex.lock cell.cmu;
    cell.cst <- outcome;
    Condition.broadcast cell.ccond;
    Mutex.unlock cell.cmu;
    match outcome with
    | Landed v -> v
    | Crashed e -> raise e
    | In_flight -> assert false
  end
  else begin
    Mutex.lock cell.cmu;
    let rec settle () =
      match cell.cst with
      | In_flight ->
        Condition.wait cell.ccond cell.cmu;
        settle ()
      | Landed v ->
        Mutex.unlock cell.cmu;
        v
      | Crashed e ->
        Mutex.unlock cell.cmu;
        raise e
    in
    settle ()
  end

let get t ?(params = Core.Heuristics.default) ?(profile_alt = false)
    ?(variant = base_variant) ~level (entry : Workloads.Registry.entry) =
  let key =
    { workload = entry.Workloads.Registry.name; level; params; profile_alt;
      variant }
  in
  memo t t.pipeline key
    ~on_miss:(fun () -> t.pipeline_builds <- t.pipeline_builds + 1)
    (fun () ->
      let prog = entry.Workloads.Registry.build () in
      let profile_input =
        if profile_alt then Some (entry.Workloads.Registry.build_alt ())
        else None
      in
      let plan =
        Core.Cost.plan_for_level ~params ?profile_input
          ~optimize:variant.optimize ~if_convert:variant.if_convert
          ~schedule:variant.schedule level prog
      in
      let trace =
        (Interp.Run.execute plan.Core.Partition.prog).Interp.Run.trace
      in
      { key; kind = entry.Workloads.Registry.kind; plan; trace })

let prep t (art : artifact) =
  memo t t.preps art.key (fun () -> Sim.Engine.prepare art.plan art.trace)

let sim t (art : artifact) ~num_pus ~in_order =
  let p = prep t art in
  memo t t.sims (art.key, num_pus, in_order) (fun () ->
      let cfg = Sim.Config.default ~num_pus ~in_order in
      (Sim.Engine.run_prepared cfg p art.trace).Sim.Engine.stats)

let builds t =
  Mutex.lock t.mu;
  let n = t.pipeline_builds in
  Mutex.unlock t.mu;
  n

let level_index level =
  let rec go i = function
    | [] -> invalid_arg "Artifact.level_index"
    | l :: rest -> if l = level then i else go (i + 1) rest
  in
  go 0 Core.Heuristics.extended_levels

(* snapshot of a cell's outcome; locks only that cell *)
let peek cell =
  Mutex.lock cell.cmu;
  let st = cell.cst in
  Mutex.unlock cell.cmu;
  st

let traces t =
  Mutex.lock t.mu;
  let landed =
    Hashtbl.fold
      (fun key cell acc ->
        match peek cell with
        | Landed art -> (key, art.trace) :: acc
        | In_flight | Crashed _ -> acc)
      t.pipeline []
  in
  Mutex.unlock t.mu;
  List.sort
    (fun ((ka : key), _) ((kb : key), _) ->
      compare
        (ka.workload, level_index ka.level, ka.params, ka.profile_alt,
         ka.variant)
        (kb.workload, level_index kb.level, kb.params, kb.profile_alt,
         kb.variant))
    landed

let trace_bytes t =
  List.fold_left
    (fun acc (_, trace) -> acc + Interp.Trace.bytes trace)
    0 (traces t)

let sim_results t =
  Mutex.lock t.mu;
  let landed =
    Hashtbl.fold
      (fun (key, num_pus, in_order) cell acc ->
        match peek cell with
        | Landed stats -> (key, (num_pus, in_order), stats) :: acc
        | In_flight | Crashed _ -> acc)
      t.sims []
  in
  Mutex.unlock t.mu;
  List.sort
    (fun (ka, (pa, ioa), _) (kb, (pb, iob), _) ->
      compare
        (ka.workload, level_index ka.level, ka.params, ka.profile_alt,
         ka.variant, pa, ioa)
        (kb.workload, level_index kb.level, kb.params, kb.profile_alt,
         kb.variant, pb, iob))
    landed
