type variant = {
  optimize : bool;
  if_convert : bool;
  schedule : bool;
}

let base_variant = { optimize = false; if_convert = false; schedule = false }

type key = {
  workload : string;
  level : Core.Heuristics.level;
  params : Core.Heuristics.params;
  profile_alt : bool;
  variant : variant;
}

type artifact = {
  key : key;
  kind : Workloads.Registry.kind;
  plan : Core.Partition.plan;
  trace : Interp.Trace.t;
}

(* A memoized value is either in flight on some domain or landed; waiters
   block on the store's condition variable until it lands.  Failures are
   cached too, so every requester of a key sees the same exception instead
   of re-running a computation that cannot succeed. *)
type 'a cell = Pending | Ready of 'a | Failed of exn

type t = {
  mu : Mutex.t;
  landed : Condition.t;
  pipeline : (key, artifact cell) Hashtbl.t;
  (* configuration-independent Sim.Engine.prep per pipeline artifact,
     shared by every machine configuration simulated against it *)
  preps : (key, Sim.Engine.prep cell) Hashtbl.t;
  sims : (key * int * bool, Sim.Stats.t cell) Hashtbl.t;
  mutable pipeline_builds : int;
}

let create () =
  {
    mu = Mutex.create ();
    landed = Condition.create ();
    pipeline = Hashtbl.create 64;
    preps = Hashtbl.create 64;
    sims = Hashtbl.create 256;
    pipeline_builds = 0;
  }

let memo t tbl key ?(on_miss = fun () -> ()) compute =
  Mutex.lock t.mu;
  let rec await () =
    match Hashtbl.find_opt tbl key with
    | Some (Ready v) ->
      Mutex.unlock t.mu;
      v
    | Some (Failed e) ->
      Mutex.unlock t.mu;
      raise e
    | Some Pending ->
      Condition.wait t.landed t.mu;
      await ()
    | None ->
      Hashtbl.replace tbl key Pending;
      on_miss ();
      Mutex.unlock t.mu;
      let outcome = try Ok (compute ()) with e -> Error e in
      Mutex.lock t.mu;
      Hashtbl.replace tbl key
        (match outcome with Ok v -> Ready v | Error e -> Failed e);
      Condition.broadcast t.landed;
      Mutex.unlock t.mu;
      (match outcome with Ok v -> v | Error e -> raise e)
  in
  await ()

let get t ?(params = Core.Heuristics.default) ?(profile_alt = false)
    ?(variant = base_variant) ~level (entry : Workloads.Registry.entry) =
  let key =
    { workload = entry.Workloads.Registry.name; level; params; profile_alt;
      variant }
  in
  memo t t.pipeline key
    ~on_miss:(fun () -> t.pipeline_builds <- t.pipeline_builds + 1)
    (fun () ->
      let prog = entry.Workloads.Registry.build () in
      let profile_input =
        if profile_alt then Some (entry.Workloads.Registry.build_alt ())
        else None
      in
      let plan =
        Core.Cost.plan_for_level ~params ?profile_input
          ~optimize:variant.optimize ~if_convert:variant.if_convert
          ~schedule:variant.schedule level prog
      in
      let trace =
        (Interp.Run.execute plan.Core.Partition.prog).Interp.Run.trace
      in
      { key; kind = entry.Workloads.Registry.kind; plan; trace })

let prep t (art : artifact) =
  memo t t.preps art.key (fun () -> Sim.Engine.prepare art.plan art.trace)

let sim t (art : artifact) ~num_pus ~in_order =
  let p = prep t art in
  memo t t.sims (art.key, num_pus, in_order) (fun () ->
      let cfg = Sim.Config.default ~num_pus ~in_order in
      (Sim.Engine.run_prepared cfg p art.trace).Sim.Engine.stats)

let builds t =
  Mutex.lock t.mu;
  let n = t.pipeline_builds in
  Mutex.unlock t.mu;
  n

let level_index level =
  let rec go i = function
    | [] -> invalid_arg "Artifact.level_index"
    | l :: rest -> if l = level then i else go (i + 1) rest
  in
  go 0 Core.Heuristics.extended_levels

let traces t =
  Mutex.lock t.mu;
  let landed =
    Hashtbl.fold
      (fun key cell acc ->
        match cell with
        | Ready art -> (key, art.trace) :: acc
        | Pending | Failed _ -> acc)
      t.pipeline []
  in
  Mutex.unlock t.mu;
  List.sort
    (fun ((ka : key), _) ((kb : key), _) ->
      compare
        (ka.workload, level_index ka.level, ka.params, ka.profile_alt,
         ka.variant)
        (kb.workload, level_index kb.level, kb.params, kb.profile_alt,
         kb.variant))
    landed

let trace_bytes t =
  List.fold_left
    (fun acc (_, trace) -> acc + Interp.Trace.bytes trace)
    0 (traces t)

let sim_results t =
  Mutex.lock t.mu;
  let landed =
    Hashtbl.fold
      (fun (key, num_pus, in_order) cell acc ->
        match cell with
        | Ready stats -> (key, (num_pus, in_order), stats) :: acc
        | Pending | Failed _ -> acc)
      t.sims []
  in
  Mutex.unlock t.mu;
  List.sort
    (fun (ka, (pa, ioa), _) (kb, (pb, iob), _) ->
      compare
        (ka.workload, level_index ka.level, ka.params, ka.profile_alt,
         ka.variant, pa, ioa)
        (kb.workload, level_index kb.level, kb.params, kb.profile_alt,
         kb.variant, pb, iob))
    landed
