type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* 17 significant digits reproduce any double exactly; force a '.' or
   exponent so the token re-parses as a float. *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e16 then
    Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(indent = true) t =
  let b = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (float_repr x)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail "expected %C at offset %d" c !pos
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> add_utf8 b code
            | None -> fail "bad \\u escape %S" hex)
         | c -> fail "unknown escape \\%c" c);
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number %S" tok
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        elems []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C at offset %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
