type spec = {
  workload : string;
  level : Core.Heuristics.level;
  num_pus : int;
  in_order : bool;
}

type result = {
  spec : spec;
  kind : Workloads.Registry.kind;
  ipc : float;
  cycles : int;
  dyn_insns : int;
  tasks : int;
  task_size : float;
  ct_per_task : float;
  task_mispredict : float;
  window_span : float;
}

let specs_for ?(levels = Core.Heuristics.all_levels)
    ?(configs = [ (8, false) ]) workloads =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun level ->
          List.map
            (fun (num_pus, in_order) -> { workload; level; num_pus; in_order })
            configs)
        levels)
    workloads

let result_of_stats spec ~kind (s : Sim.Stats.t) =
  {
    spec;
    kind;
    ipc = Sim.Stats.ipc s;
    cycles = s.Sim.Stats.cycles;
    dyn_insns = s.Sim.Stats.dyn_insns;
    tasks = s.Sim.Stats.tasks;
    task_size = Sim.Stats.avg_task_size s;
    ct_per_task = Sim.Stats.avg_ct_per_task s;
    task_mispredict = Sim.Stats.task_mispredict_rate s;
    window_span = Sim.Stats.measured_window_span s;
  }

let run ?jobs store specs =
  Pool.map ?jobs
    (fun spec ->
      let entry = Workloads.Suite.find spec.workload in
      let art = Artifact.get store ~level:spec.level entry in
      let stats =
        Artifact.sim store art ~num_pus:spec.num_pus ~in_order:spec.in_order
      in
      result_of_stats spec ~kind:art.Artifact.kind stats)
    specs

let results_of_store store =
  List.filter_map
    (fun ((key : Artifact.key), (num_pus, in_order), stats) ->
      if
        key.Artifact.params = Core.Heuristics.default
        && (not key.Artifact.profile_alt)
        && key.Artifact.variant = Artifact.base_variant
      then
        let spec =
          { workload = key.Artifact.workload; level = key.Artifact.level;
            num_pus; in_order }
        in
        let kind = (Workloads.Suite.find spec.workload).Workloads.Registry.kind in
        Some (result_of_stats spec ~kind stats)
      else None)
    (Artifact.sim_results store)

(* --- trace statistics ------------------------------------------------------ *)

type trace_stat = {
  t_workload : string;
  t_level : Core.Heuristics.level;
  t_events : int;
  t_insns : int;
  t_addrs : int;
  t_heap_words : int;
  t_boxed_words : int;
  t_bytes : int;
}

let trace_stat_of_trace ~workload ~level (trace : Interp.Trace.t) =
  let s = Interp.Trace.stats trace in
  {
    t_workload = workload;
    t_level = level;
    t_events = s.Interp.Trace.events;
    t_insns = trace.Interp.Trace.dyn_insns;
    t_addrs = s.Interp.Trace.addrs;
    t_heap_words = s.Interp.Trace.heap_words;
    t_boxed_words = s.Interp.Trace.boxed_words;
    t_bytes = Interp.Trace.bytes trace;
  }

let trace_stats_of_store store =
  List.filter_map
    (fun ((key : Artifact.key), trace) ->
      if
        key.Artifact.params = Core.Heuristics.default
        && (not key.Artifact.profile_alt)
        && key.Artifact.variant = Artifact.base_variant
      then
        Some
          (trace_stat_of_trace ~workload:key.Artifact.workload
             ~level:key.Artifact.level trace)
      else None)
    (Artifact.traces store)

(* --- cycle-accounting breakdowns ------------------------------------------- *)

type account = {
  a_spec : spec;
  a_kind : Workloads.Registry.kind;
  a_acct : Sim.Account.t;
}

let account_of_stats spec ~kind (s : Sim.Stats.t) =
  { a_spec = spec; a_kind = kind; a_acct = s.Sim.Stats.acct }

let accounts_of_store store =
  List.filter_map
    (fun ((key : Artifact.key), (num_pus, in_order), stats) ->
      if
        key.Artifact.params = Core.Heuristics.default
        && (not key.Artifact.profile_alt)
        && key.Artifact.variant = Artifact.base_variant
      then
        let spec =
          { workload = key.Artifact.workload; level = key.Artifact.level;
            num_pus; in_order }
        in
        let kind = (Workloads.Suite.find spec.workload).Workloads.Registry.kind in
        Some (account_of_stats spec ~kind stats)
      else None)
    (Artifact.sim_results store)

let conserved a =
  match Sim.Account.check a.a_acct with Ok () -> true | Error _ -> false

(* --- static dependence summaries ------------------------------------------- *)

type wide_site = {
  w_fn : string;
  w_blk : int;
  w_idx : int;
  w_store : bool;
  w_width : int;
}

type dep = {
  d_workload : string;
  d_kind : Workloads.Registry.kind;
  d_level : Core.Heuristics.level;
  d_tasks : int;
  d_reg_edges : int;
  d_mem_edges : int;
  d_fi_mem_edges : int;
  d_store_sites : int;
  d_load_sites : int;
  d_unbounded_sites : int;
  d_fi_unbounded_sites : int;
  d_widest : wide_site list;
  d_observed : int;
  d_predicted_hit : int;
  d_dyn_flows : int;
}

let widest_n = 5

(* Widest refined sites first; unbounded regions (width -1) outrank any
   finite count, ties broken by site identity for determinism. *)
let wide_compare a b =
  let rank w = if w.w_width < 0 then max_int else w.w_width in
  match compare (rank b) (rank a) with
  | 0 -> compare (a.w_fn, a.w_blk, a.w_idx) (b.w_fn, b.w_blk, b.w_idx)
  | c -> c

let precision_of_summary prog summary =
  let unbounded = ref 0 and fi_unbounded = ref 0 and wides = ref [] in
  List.iter
    (fun fname ->
      List.iter2
        (fun (s : Analysis.Memdep.site) (f : Analysis.Memdep.site) ->
          (match Analysis.Memdep.width f.Analysis.Memdep.region with
          | None -> incr fi_unbounded
          | Some _ -> ());
          let w =
            match Analysis.Memdep.width s.Analysis.Memdep.region with
            | None ->
              incr unbounded;
              -1
            | Some w -> w
          in
          wides :=
            {
              w_fn = fname;
              w_blk = s.Analysis.Memdep.blk;
              w_idx = s.Analysis.Memdep.idx;
              w_store = s.Analysis.Memdep.store;
              w_width = w;
            }
            :: !wides)
        (Analysis.Memdep.sites summary fname)
        (Analysis.Memdep.fi_sites summary fname))
    (Ir.Prog.func_names prog);
  let widest =
    List.filteri
      (fun i _ -> i < widest_n)
      (List.sort wide_compare !wides)
  in
  (!unbounded, !fi_unbounded, widest)

let dep_of_artifact (art : Artifact.artifact) =
  let plan = art.Artifact.plan and trace = art.Artifact.trace in
  let dep = Core.Depend.analyze plan in
  let summary = Core.Depend.summary dep in
  let fi_dep = Core.Depend.analyze ~fi:true ~summary plan in
  let unbounded, fi_unbounded, widest =
    precision_of_summary plan.Core.Partition.prog summary
  in
  let parts =
    Array.map
      (fun name -> Ir.Prog.Smap.find name plan.Core.Partition.parts)
      trace.Interp.Trace.fnames
  in
  let instances = Sim.Dyntask.chop trace ~parts in
  let observed = Sim.Memflow.observed trace ~instances in
  let fnames = trace.Interp.Trace.fnames in
  let hits, flows =
    List.fold_left
      (fun (hits, flows) (o : Sim.Memflow.edge) ->
        let src =
          { Core.Depend.fn = fnames.(o.Sim.Memflow.src_fid);
            task = o.Sim.Memflow.src_task }
        and dst =
          { Core.Depend.fn = fnames.(o.Sim.Memflow.dst_fid);
            task = o.Sim.Memflow.dst_task }
        in
        ( (if Core.Depend.predicts_mem dep ~src ~dst then hits + 1 else hits),
          flows + o.Sim.Memflow.count ))
      (0, 0) observed
  in
  {
    d_workload = art.Artifact.key.Artifact.workload;
    d_kind = art.Artifact.kind;
    d_level = art.Artifact.key.Artifact.level;
    d_tasks = Core.Depend.num_tasks dep;
    d_reg_edges = List.length (Core.Depend.reg_edges dep);
    d_mem_edges = List.length (Core.Depend.mem_edges dep);
    d_fi_mem_edges = List.length (Core.Depend.mem_edges fi_dep);
    d_store_sites = Core.Depend.num_store_sites dep;
    d_load_sites = Core.Depend.num_load_sites dep;
    d_unbounded_sites = unbounded;
    d_fi_unbounded_sites = fi_unbounded;
    d_widest = widest;
    d_observed = List.length observed;
    d_predicted_hit = hits;
    d_dyn_flows = flows;
  }

let dep_violations d = d.d_observed - d.d_predicted_hit

let deps_of_store store =
  List.filter_map
    (fun ((key : Artifact.key), _trace) ->
      if
        key.Artifact.params = Core.Heuristics.default
        && (not key.Artifact.profile_alt)
        && key.Artifact.variant = Artifact.base_variant
      then
        let entry = Workloads.Suite.find key.Artifact.workload in
        Some (dep_of_artifact (Artifact.get store ~level:key.Artifact.level entry))
      else None)
    (Artifact.traces store)

(* --- static cost predictions ----------------------------------------------- *)

type cost = {
  co_workload : string;
  co_kind : Workloads.Registry.kind;
  co_level : Core.Heuristics.level;
  co_tasks : int;
  co_scalar : float;
  co_pred : Analysis.Cost.shares;
}

let cost_of_artifact (art : Artifact.artifact) =
  let plan = art.Artifact.plan in
  let r = Core.Cost.plan_cost plan in
  let tasks =
    Ir.Prog.Smap.fold
      (fun _ (p : Core.Task.partition) acc ->
        acc + Array.length p.Core.Task.tasks)
      plan.Core.Partition.parts 0
  in
  {
    co_workload = art.Artifact.key.Artifact.workload;
    co_kind = art.Artifact.kind;
    co_level = art.Artifact.key.Artifact.level;
    co_tasks = tasks;
    co_scalar = r.Core.Cost.r_scalar;
    co_pred = r.Core.Cost.r_shares;
  }

(* --- JSON ----------------------------------------------------------------- *)

let level_tag = function
  | Core.Heuristics.Basic_block -> "bb"
  | Core.Heuristics.Control_flow -> "cf"
  | Core.Heuristics.Data_dependence -> "dd"
  | Core.Heuristics.Task_size -> "ts"
  | Core.Heuristics.Feedback -> "fb"

let level_of_tag = function
  | "bb" -> Ok Core.Heuristics.Basic_block
  | "cf" -> Ok Core.Heuristics.Control_flow
  | "dd" -> Ok Core.Heuristics.Data_dependence
  | "ts" -> Ok Core.Heuristics.Task_size
  | "fb" -> Ok Core.Heuristics.Feedback
  | s -> Error (Printf.sprintf "unknown level tag %S" s)

let result_to_json r =
  Json.Obj
    [
      ("workload", Json.String r.spec.workload);
      ("kind", Json.String (Workloads.Registry.kind_name r.kind));
      ("level", Json.String (level_tag r.spec.level));
      ("num_pus", Json.Int r.spec.num_pus);
      ("in_order", Json.Bool r.spec.in_order);
      ("ipc", Json.Float r.ipc);
      ("cycles", Json.Int r.cycles);
      ("dyn_insns", Json.Int r.dyn_insns);
      ("tasks", Json.Int r.tasks);
      ("task_size", Json.Float r.task_size);
      ("ct_per_task", Json.Float r.ct_per_task);
      ("task_mispredict", Json.Float r.task_mispredict);
      ("window_span", Json.Float r.window_span);
    ]

let to_json results = Json.List (List.map result_to_json results)

let trace_stat_to_json t =
  Json.Obj
    [
      ("workload", Json.String t.t_workload);
      ("level", Json.String (level_tag t.t_level));
      ("events", Json.Int t.t_events);
      ("dyn_insns", Json.Int t.t_insns);
      ("addrs", Json.Int t.t_addrs);
      ("heap_words", Json.Int t.t_heap_words);
      ("boxed_words", Json.Int t.t_boxed_words);
      ("bytes", Json.Int t.t_bytes);
    ]

(* Integer-only on purpose: percentages are derived by readers, so the
   golden-snapshot diffs in test/golden/ never chase float formatting. *)
let account_to_json a =
  let acct = a.a_acct in
  Json.Obj
    ([
       ("workload", Json.String a.a_spec.workload);
       ("kind", Json.String (Workloads.Registry.kind_name a.a_kind));
       ("level", Json.String (level_tag a.a_spec.level));
       ("num_pus", Json.Int a.a_spec.num_pus);
       ("in_order", Json.Bool a.a_spec.in_order);
       ("cycles", Json.Int acct.Sim.Account.cycles);
       ("budget", Json.Int (Sim.Account.budget acct));
     ]
    @ List.map
        (fun c -> (Sim.Account.name c, Json.Int (Sim.Account.get acct c)))
        Sim.Account.all)

(* Integer-only like accounts: precision ratios are derived by readers. *)
let dep_to_json d =
  Json.Obj
    [
      ("workload", Json.String d.d_workload);
      ("kind", Json.String (Workloads.Registry.kind_name d.d_kind));
      ("level", Json.String (level_tag d.d_level));
      ("tasks", Json.Int d.d_tasks);
      ("reg_edges", Json.Int d.d_reg_edges);
      ("mem_edges", Json.Int d.d_mem_edges);
      ("fi_mem_edges", Json.Int d.d_fi_mem_edges);
      ("store_sites", Json.Int d.d_store_sites);
      ("load_sites", Json.Int d.d_load_sites);
      ("unbounded_sites", Json.Int d.d_unbounded_sites);
      ("fi_unbounded_sites", Json.Int d.d_fi_unbounded_sites);
      ( "widest",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("fn", Json.String w.w_fn);
                   ("blk", Json.Int w.w_blk);
                   ("idx", Json.Int w.w_idx);
                   ("store", Json.Bool w.w_store);
                   ("width", Json.Int w.w_width);
                 ])
             d.d_widest) );
      ("observed", Json.Int d.d_observed);
      ("predicted_hit", Json.Int d.d_predicted_hit);
      ("dyn_flows", Json.Int d.d_dyn_flows);
      ("violations", Json.Int (dep_violations d));
    ]

let cost_to_json c =
  let s = c.co_pred in
  Json.Obj
    [
      ("workload", Json.String c.co_workload);
      ("kind", Json.String (Workloads.Registry.kind_name c.co_kind));
      ("level", Json.String (level_tag c.co_level));
      ("tasks", Json.Int c.co_tasks);
      ("scalar", Json.Float c.co_scalar);
      ("pred_useful", Json.Float s.Analysis.Cost.s_useful);
      ("pred_data_wait", Json.Float s.Analysis.Cost.s_data_wait);
      ("pred_ctrl_squash", Json.Float s.Analysis.Cost.s_ctrl_squash);
      ("pred_mem_squash", Json.Float s.Analysis.Cost.s_mem_squash);
      ("pred_load_imbalance", Json.Float s.Analysis.Cost.s_load_imbalance);
      ("pred_overhead", Json.Float s.Analysis.Cost.s_overhead);
    ]

type fuzz = {
  z_seed : int;
  z_profile : string;
  z_programs : int;
  z_levels : int;
  z_lint_pass : int;
  z_roundtrip_pass : int;
  z_trace_pass : int;
  z_dep_pass : int;
  z_absint_pass : int;
  z_acct_pass : int;
  z_cost_pass : int;
  z_fb_bound_pass : int;
  z_ref_checked : int;
  z_ref_pass : int;
  z_violations : int;
}

(* Integer-only like accounts and deps: pass rates are derived by readers. *)
let fuzz_to_json z =
  Json.Obj
    [
      ("seed", Json.Int z.z_seed);
      ("profile", Json.String z.z_profile);
      ("programs", Json.Int z.z_programs);
      ("levels", Json.Int z.z_levels);
      ("lint_pass", Json.Int z.z_lint_pass);
      ("roundtrip_pass", Json.Int z.z_roundtrip_pass);
      ("trace_pass", Json.Int z.z_trace_pass);
      ("dep_pass", Json.Int z.z_dep_pass);
      ("absint_pass", Json.Int z.z_absint_pass);
      ("acct_pass", Json.Int z.z_acct_pass);
      ("cost_pass", Json.Int z.z_cost_pass);
      ("fb_bound_pass", Json.Int z.z_fb_bound_pass);
      ("ref_checked", Json.Int z.z_ref_checked);
      ("ref_pass", Json.Int z.z_ref_pass);
      ("violations", Json.Int z.z_violations);
    ]

let accounts_to_json accounts =
  Json.Obj [ ("accounts", Json.List (List.map account_to_json accounts)) ]

let export_accounts ~path accounts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (accounts_to_json accounts));
      output_char oc '\n')

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected string" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected int" name)

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected bool" name)

let as_float name = function
  | Json.Float x -> Ok x
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S: expected number" name)

let str name j = let* v = field name j in as_string name v
let int name j = let* v = field name j in as_int name v
let boolean name j = let* v = field name j in as_bool name v
let num name j = let* v = field name j in as_float name v

let result_of_json j =
  let* workload = str "workload" j in
  let* kind_s = str "kind" j in
  let* kind =
    match kind_s with
    | "int" -> Ok `Int
    | "fp" -> Ok `Fp
    | s -> Error (Printf.sprintf "unknown kind %S" s)
  in
  let* level_s = str "level" j in
  let* level = level_of_tag level_s in
  let* num_pus = int "num_pus" j in
  let* in_order = boolean "in_order" j in
  let* ipc = num "ipc" j in
  let* cycles = int "cycles" j in
  let* dyn_insns = int "dyn_insns" j in
  let* tasks = int "tasks" j in
  let* task_size = num "task_size" j in
  let* ct_per_task = num "ct_per_task" j in
  let* task_mispredict = num "task_mispredict" j in
  let* window_span = num "window_span" j in
  Ok
    {
      spec = { workload; level; num_pus; in_order };
      kind;
      ipc;
      cycles;
      dyn_insns;
      tasks;
      task_size;
      ct_per_task;
      task_mispredict;
      window_span;
    }

let results_of_list items =
  List.fold_right
    (fun item acc ->
      let* rest = acc in
      let* r = result_of_json item in
      Ok (r :: rest))
    items (Ok [])

let of_json = function
  (* legacy shape: a bare list of job results *)
  | Json.List items -> results_of_list items
  (* current shape: an object whose "jobs" member is that list (other
     members, e.g. "trace", carry section-specific statistics) *)
  | Json.Obj _ as j -> (
    match Json.member "jobs" j with
    | Some (Json.List items) -> results_of_list items
    | Some _ -> Error "field \"jobs\": expected a list of results"
    | None -> Error "missing field \"jobs\"")
  | _ -> Error "expected a top-level list or object of results"

let export ~path ?trace ?fuzz results =
  let json =
    match (trace, fuzz) with
    (* legacy shape when no section rides along *)
    | None, None -> to_json results
    | _ ->
      let section name to_json = function
        | None -> []
        | Some items -> [ (name, Json.List (List.map to_json items)) ]
      in
      Json.Obj
        (("jobs", to_json results)
         :: (section "trace" trace_stat_to_json trace
            @ section "fuzz" fuzz_to_json fuzz))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
