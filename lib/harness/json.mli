(** A minimal JSON tree, printer and parser.

    The experiment engine exports machine-readable results
    ([bench/results.json]); the container has no JSON library, so this is a
    small self-contained implementation.  Printing is deterministic (object
    fields keep their construction order) and numbers round-trip: floats are
    printed with 17 significant digits and always contain a ['.'] or
    exponent so they re-parse as [Float], never [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the exact grammar [to_string] emits (plus
    arbitrary whitespace); the standard JSON escapes (backslash-quote,
    backslash-backslash, [b f n r t], [uXXXX]) are understood, and escaped
    non-ASCII code points are decoded to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)
