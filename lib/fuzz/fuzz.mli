(** Differential fuzzing harness over the synthetic corpus.

    Runs {!Workloads.Synth} programs through every heuristic selection
    level and applies the verification layers built across the repo as an
    oracle stack, per program:

    - [lint]: {!Lint.check_prog} on the program, {!Lint.check_plan} on
      every level's plan — all [ir/*], [part/*], [regcomm/*] rules clean;
    - [roundtrip]: {!Lint.check_roundtrip} — the textual dump re-parses to
      the identical program;
    - [crash]: the interpreter must terminate within the step bound;
    - [trace]: {!Lint.check_trace} — the packed trace decodes cleanly;
    - [dep]: {!Lint.check_deps} — zero [dep/sound] violations, [dep/reg]
      agreement;
    - [absint]: {!Lint.check_absint} — every traced address inside its
      refined abstract region, and the refinement never looser than the
      flow-insensitive bound;
    - [acct]: {!Lint.check_account} — cycle conservation exact on every
      machine shape simulated;
    - [cost]: {!Lint.check_cost} — predicted shares conserve and rederive
      bit-identically;
    - [fb-bound]: the [fb] plan's static scalar cost never exceeds its
      [ts] seed's;
    - [ref-diff]: on a sampled subset, the event core's stats, instance
      count and per-task schedule are cycle-identical to the frozen
      {!Sim_ref.Engine_ref} oracle.

    Any violation carries the [(profile, seed)] pair that regenerates the
    offending program; {!minimize} shrinks it and {!dump_reproducer}
    writes a re-parseable regression file. *)

type config = {
  seed : int;  (** corpus root seed *)
  n : int;  (** total programs, spread round-robin over [profiles] *)
  profiles : Workloads.Synth.Profile.t list;
  levels : Core.Heuristics.level list;
  ref_sample : int;
      (** run the sim_ref differential on every [ref_sample]-th program
          (0 disables it) *)
  max_steps : int;  (** interpreter step bound per program execution *)
  machines : (int * bool) list;  (** [(num_pus, in_order)] shapes simulated *)
}

val default_config : config
(** seed 42, n 200, every profile, all five levels, 1-in-10 sim_ref
    sampling, the 4-PU in-order and 8-PU out-of-order machines. *)

type violation = {
  v_profile : string;
  v_index : int;  (** corpus position *)
  v_seed : int;  (** per-program generator seed ({!Workloads.Synth.program_seed}) *)
  v_level : string;  (** level tag, or ["-"] for program-wide oracles *)
  v_oracle : string;  (** ["lint"], ["roundtrip"], ["crash"], ["plan"],
                          ["trace"], ["dep"], ["absint"], ["acct"],
                          ["cost"], ["fb-bound"] or ["ref-diff"] *)
  v_detail : string;
}

type report = {
  p_profile : string;
  p_index : int;
  p_seed : int;
  p_violations : violation list;
  p_ref_checked : bool;
  p_funcs : int;  (** structure-space accounting for the corpus histogram *)
  p_blocks : int;
  p_insns : int;  (** static instructions *)
}

type shape = {
  s_programs : int;
  s_funcs : int;  (** summed over the profile's programs *)
  s_blocks : int;
  s_insns : int;
}

type outcome = {
  o_config : config;
  o_programs : int;
  o_checks : int;  (** program x level oracle applications *)
  o_violations : violation list;  (** corpus order *)
  o_records : Harness.Job.fuzz list;  (** one per profile, profile order *)
  o_shapes : (string * shape) list;  (** structure-space histogram *)
  o_wall_seconds : float;
}

val fault_hook : (Ir.Prog.t -> Ir.Prog.t) option ref
(** Debug hook: when set, every generated program passes through it before
    the oracle stack — how tests and [--inject-fault] seed known-bad
    programs to prove the harness catches and shrinks them.  Read-only
    during a run (set it before, clear after). *)

val inject_div0 : seed:int -> Ir.Prog.t -> Ir.Prog.t
(** The canned injected fault: a deterministic (seeded) unguarded
    [div .., .., #0] inserted into one block of [main], which the [crash]
    oracle catches at the first execution. *)

val check_value : config -> profile:string -> index:int -> seed:int ->
  Ir.Prog.t -> report
(** The oracle stack over one concrete program (no generation, no fault
    hook) — what {!minimize} predicates and regression tests call. *)

val check_one : config -> index:int -> report
(** Generate program [index] of the corpus (profile round-robin, seed via
    {!Workloads.Synth.program_seed}), apply {!fault_hook}, run
    {!check_value}. *)

val run : ?jobs:int -> ?progress:(done_:int -> total:int -> unit) ->
  config -> outcome
(** The whole corpus through {!check_one} on the {!Harness.Pool} domains.
    Deterministic in [config] (and [fault_hook]) regardless of [jobs];
    [progress] is called from the coordinating domain only. *)

val records_of_reports : config -> report list -> Harness.Job.fuzz list
(** Fold per-program reports into the per-profile {!Harness.Job.fuzz}
    aggregates ([run] does this internally; exposed for the daemon, which
    streams reports). *)

val minimize : fails:(Ir.Prog.t -> bool) -> Ir.Prog.t -> Ir.Prog.t
(** Greedy shrink to a local minimum: repeatedly replace the program with
    its first {!Workloads.Synth.shrink_candidates} candidate that is still
    structurally valid, [ir/*]-clean {e and} still satisfies [fails].
    Deterministic: candidate order is fixed, first hit wins. *)

val fails_oracle : config -> oracle:string -> Ir.Prog.t -> bool
(** Does {!check_value} report at least one violation of [oracle]?  The
    standard predicate handed to {!minimize}. *)

val dump_reproducer :
  dir:string -> name:string -> Ir.Prog.t -> (string, string) result
(** Write the program to [dir/name.ir] through {!Ir.Pp.program_text},
    re-parse the written bytes and fail if they do not reproduce the
    program ([Ok path] otherwise).  [dir] is created if missing. *)

val violation_text : violation -> string
(** One-line human rendering: profile, index, seed, level, oracle, detail. *)
