(* Differential fuzzing harness over the synthetic corpus: generate
   programs with Workloads.Synth, push each through every heuristic level,
   and hold the result against every verification layer the repo has
   (lint, round-trip, dep/sound, acct/conserve, cost/conserve, the fb<=ts
   cost bound and the frozen sim_ref cycle differential).  See fuzz.mli
   for the oracle stack. *)

type config = {
  seed : int;
  n : int;
  profiles : Workloads.Synth.Profile.t list;
  levels : Core.Heuristics.level list;
  ref_sample : int;
  max_steps : int;
  machines : (int * bool) list;
}

let default_config =
  {
    seed = 42;
    n = 200;
    profiles = Workloads.Synth.Profile.all;
    levels = Core.Heuristics.extended_levels;
    ref_sample = 10;
    max_steps = 5_000_000;
    machines = [ (4, true); (8, false) ];
  }

type violation = {
  v_profile : string;
  v_index : int;
  v_seed : int;
  v_level : string;
  v_oracle : string;
  v_detail : string;
}

type report = {
  p_profile : string;
  p_index : int;
  p_seed : int;
  p_violations : violation list;
  p_ref_checked : bool;
  p_funcs : int;
  p_blocks : int;
  p_insns : int;
}

type shape = {
  s_programs : int;
  s_funcs : int;
  s_blocks : int;
  s_insns : int;
}

type outcome = {
  o_config : config;
  o_programs : int;
  o_checks : int;
  o_violations : violation list;
  o_records : Harness.Job.fuzz list;
  o_shapes : (string * shape) list;
  o_wall_seconds : float;
}

let fault_hook : (Ir.Prog.t -> Ir.Prog.t) option ref = ref None

let violation_text v =
  Printf.sprintf "%s #%d (seed %d) level %s oracle %s: %s" v.v_profile
    v.v_index v.v_seed v.v_level v.v_oracle v.v_detail

(* --- the canned injected fault --------------------------------------- *)

(* An unguarded divide-by-zero at a seeded position of main's entry block:
   executes on every run (the entry block cannot be skipped), crashes the
   interpreter, and survives print/parse — exactly the kind of latent bug
   the crash oracle plus shrinking must reduce to a two-instruction
   reproducer. *)
let inject_div0 ~seed (prog : Ir.Prog.t) =
  let f = Ir.Prog.find prog prog.main in
  let entry = f.Ir.Func.blocks.(0) in
  let insns = entry.Ir.Block.insns in
  let pos = abs seed mod (Array.length insns + 1) in
  let r = Ir.Reg.tmp 0 in
  let fault =
    [| Ir.Insn.Li (r, 0); Ir.Insn.Bin (Ir.Insn.Div, r, r, Ir.Insn.Imm 0) |]
  in
  let insns =
    Array.concat
      [
        Array.sub insns 0 pos;
        fault;
        Array.sub insns pos (Array.length insns - pos);
      ]
  in
  let blocks = Array.copy f.Ir.Func.blocks in
  blocks.(0) <- { entry with Ir.Block.insns };
  {
    prog with
    Ir.Prog.funcs =
      Ir.Prog.Smap.add prog.main { f with Ir.Func.blocks } prog.funcs;
  }

(* --- the oracle stack over one program ------------------------------- *)

let diag_text = function
  | [] -> "no diagnostics"
  | d :: rest ->
    Format.asprintf "%a%s" Lint.Diag.pp d
      (match rest with
      | [] -> ""
      | _ -> Printf.sprintf " (+%d more)" (List.length rest))

(* per-task schedule record for the sim_ref differential (the same
   comparison the event-core test suite pins) *)
(* fields are only written and structurally compared *)
type sched = {
  c_index : int;
  c_pu : int;
  c_assign : int;
  c_complete : int;
  c_retire : int;
  c_mispredicted : bool;
  c_violations : int;
}
[@@warning "-69"]

let ref_differential cfg plan trace =
  let ev_new = ref [] in
  let obs_new (e : Sim.Engine.event) =
    ev_new :=
      {
        c_index = e.Sim.Engine.e_index;
        c_pu = e.Sim.Engine.e_pu;
        c_assign = e.Sim.Engine.e_assign;
        c_complete = e.Sim.Engine.e_complete;
        c_retire = e.Sim.Engine.e_retire;
        c_mispredicted = e.Sim.Engine.e_mispredicted;
        c_violations = e.Sim.Engine.e_violations;
      }
      :: !ev_new
  in
  let r_new = Sim.Engine.run_with_trace ~observer:obs_new cfg plan trace in
  let ev_ref = ref [] in
  let obs_ref (e : Sim_ref.Engine_ref.event) =
    ev_ref :=
      {
        c_index = e.Sim_ref.Engine_ref.e_index;
        c_pu = e.Sim_ref.Engine_ref.e_pu;
        c_assign = e.Sim_ref.Engine_ref.e_assign;
        c_complete = e.Sim_ref.Engine_ref.e_complete;
        c_retire = e.Sim_ref.Engine_ref.e_retire;
        c_mispredicted = e.Sim_ref.Engine_ref.e_mispredicted;
        c_violations = e.Sim_ref.Engine_ref.e_violations;
      }
      :: !ev_ref
  in
  let r_ref =
    Sim_ref.Engine_ref.run_with_trace ~observer:obs_ref cfg plan trace
  in
  if r_new.Sim.Engine.instances <> r_ref.Sim_ref.Engine_ref.instances then
    Some
      (Printf.sprintf "instances diverge: event core %d, sim_ref %d"
         r_new.Sim.Engine.instances r_ref.Sim_ref.Engine_ref.instances)
  else if !ev_new <> !ev_ref then
    Some "per-task schedules diverge from sim_ref"
  else if r_new.Sim.Engine.stats <> r_ref.Sim_ref.Engine_ref.stats then
    Some
      (Printf.sprintf "stats diverge: event core %d cycles, sim_ref %d"
         r_new.Sim.Engine.stats.Sim.Stats.cycles
         r_ref.Sim_ref.Engine_ref.stats.Sim.Stats.cycles)
  else None

let prog_shape (prog : Ir.Prog.t) =
  ( Ir.Prog.Smap.cardinal prog.funcs,
    Ir.Prog.Smap.fold
      (fun _ f acc -> acc + Ir.Func.num_blocks f)
      prog.funcs 0,
    Ir.Prog.static_size prog )

let check_value config ~profile ~index ~seed prog =
  let vs = ref [] in
  let add ~level ~oracle detail =
    vs :=
      {
        v_profile = profile;
        v_index = index;
        v_seed = seed;
        v_level = level;
        v_oracle = oracle;
        v_detail = detail;
      }
      :: !vs
  in
  let check ~level ~oracle diags =
    match Lint.Diag.errors diags with
    | [] -> ()
    | errs -> add ~level ~oracle (diag_text errs)
  in
  let ref_checked =
    config.ref_sample > 0 && index mod config.ref_sample = 0
  in
  let prog_errors = Lint.Diag.errors (Lint.check_prog prog) in
  if prog_errors <> [] then
    (* a malformed program invalidates every downstream oracle: report the
       lint failure alone and skip the levels *)
    add ~level:"-" ~oracle:"lint" (diag_text prog_errors)
  else begin
    check ~level:"-" ~oracle:"roundtrip" (Lint.check_roundtrip prog);
    let scalar_ts = ref None in
    let scalar_fb = ref None in
    List.iter
      (fun level ->
        let ltag = Harness.Job.level_tag level in
        match
          try Ok (Core.Cost.plan_for_level level prog)
          with e -> Error (Printexc.to_string e)
        with
        | Error msg -> add ~level:ltag ~oracle:"plan" msg
        | Ok plan -> (
          let plan_errors = Lint.Diag.errors (Lint.check_plan plan) in
          if plan_errors <> [] then
            add ~level:ltag ~oracle:"lint" (diag_text plan_errors)
          else begin
            check ~level:ltag ~oracle:"cost" (Lint.check_cost plan);
            (match level with
            | Core.Heuristics.Task_size ->
              scalar_ts := Some (Core.Cost.plan_cost plan).Core.Cost.r_scalar
            | Core.Heuristics.Feedback ->
              scalar_fb := Some (Core.Cost.plan_cost plan).Core.Cost.r_scalar
            | _ -> ());
            match
              try
                Ok
                  (Interp.Run.execute ~max_steps:config.max_steps
                     plan.Core.Partition.prog)
              with
              | Interp.Run.Runtime_error m -> Error m
              | e -> Error (Printexc.to_string e)
            with
            | Error msg -> add ~level:ltag ~oracle:"crash" msg
            | Ok out ->
              let trace = out.Interp.Run.trace in
              check ~level:ltag ~oracle:"trace" (Lint.check_trace trace);
              check ~level:ltag ~oracle:"dep" (Lint.check_deps plan trace);
              check ~level:ltag ~oracle:"absint"
                (Lint.check_absint plan trace);
              List.iter
                (fun (num_pus, in_order) ->
                  let cfg = Sim.Config.default ~num_pus ~in_order in
                  match
                    try Ok (Sim.Engine.run_with_trace cfg plan trace)
                    with e -> Error (Printexc.to_string e)
                  with
                  | Error msg -> add ~level:ltag ~oracle:"crash" ("sim: " ^ msg)
                  | Ok r ->
                    check ~level:ltag ~oracle:"acct"
                      (Lint.check_account ~num_pus ~in_order
                         r.Sim.Engine.stats);
                    if ref_checked then
                      match ref_differential cfg plan trace with
                      | None -> ()
                      | Some msg ->
                        add ~level:ltag ~oracle:"ref-diff"
                          (Printf.sprintf "%dPU %s: %s" num_pus
                             (if in_order then "in-order" else "ooo")
                             msg))
                config.machines
          end))
      config.levels;
    (* the feedback search must never lose to its task-size seed on the
       static scalar (Core.Cost.refine's contract) *)
    match (!scalar_ts, !scalar_fb) with
    | Some ts, Some fb when fb > ts +. 1e-9 ->
      add ~level:"fb" ~oracle:"fb-bound"
        (Printf.sprintf "fb scalar %.9f exceeds ts seed %.9f" fb ts)
    | _ -> ()
  end;
  let funcs, blocks, insns = prog_shape prog in
  {
    p_profile = profile;
    p_index = index;
    p_seed = seed;
    p_violations = List.rev !vs;
    p_ref_checked = ref_checked;
    p_funcs = funcs;
    p_blocks = blocks;
    p_insns = insns;
  }

let profile_of_index config index =
  match config.profiles with
  | [] -> invalid_arg "Fuzz: empty profile list"
  | ps -> List.nth ps (index mod List.length ps)

let check_one config ~index =
  let profile = profile_of_index config index in
  let seed = Workloads.Synth.program_seed ~seed:config.seed ~index in
  let prog = Workloads.Synth.generate ~profile ~seed in
  let prog = match !fault_hook with Some f -> f prog | None -> prog in
  check_value config ~profile:profile.Workloads.Synth.Profile.name ~index
    ~seed prog

(* --- aggregation ------------------------------------------------------ *)

let violated oracle r =
  List.exists (fun v -> String.equal v.v_oracle oracle) r.p_violations

(* a program-wide lint failure skipped every downstream oracle *)
let blocked r =
  List.exists
    (fun v -> String.equal v.v_oracle "lint" && String.equal v.v_level "-")
    r.p_violations

let records_of_reports config reports =
  List.map
    (fun (prof : Workloads.Synth.Profile.t) ->
      let rs =
        List.filter
          (fun r -> String.equal r.p_profile prof.Workloads.Synth.Profile.name)
          reports
      in
      let count pred = List.length (List.filter pred rs) in
      let pass oracle r = (not (blocked r)) && not (violated oracle r) in
      {
        Harness.Job.z_seed = config.seed;
        z_profile = prof.Workloads.Synth.Profile.name;
        z_programs = List.length rs;
        z_levels = List.length config.levels;
        z_lint_pass =
          count (fun r ->
              (not (violated "lint" r)) && not (violated "plan" r));
        z_roundtrip_pass = count (pass "roundtrip");
        z_trace_pass = count (fun r -> pass "trace" r && pass "crash" r);
        z_dep_pass = count (fun r -> pass "dep" r && pass "crash" r);
        z_absint_pass = count (fun r -> pass "absint" r && pass "crash" r);
        z_acct_pass = count (fun r -> pass "acct" r && pass "crash" r);
        z_cost_pass = count (pass "cost");
        z_fb_bound_pass = count (pass "fb-bound");
        z_ref_checked = count (fun r -> r.p_ref_checked);
        z_ref_pass =
          count (fun r -> r.p_ref_checked && not (violated "ref-diff" r));
        z_violations =
          List.fold_left
            (fun acc r -> acc + List.length r.p_violations)
            0 rs;
      })
    config.profiles

let shapes_of_reports config reports =
  List.map
    (fun (prof : Workloads.Synth.Profile.t) ->
      let name = prof.Workloads.Synth.Profile.name in
      let rs = List.filter (fun r -> String.equal r.p_profile name) reports in
      ( name,
        {
          s_programs = List.length rs;
          s_funcs = List.fold_left (fun a r -> a + r.p_funcs) 0 rs;
          s_blocks = List.fold_left (fun a r -> a + r.p_blocks) 0 rs;
          s_insns = List.fold_left (fun a r -> a + r.p_insns) 0 rs;
        } ))
    config.profiles

let run ?jobs ?progress config =
  let t0 = Unix.gettimeofday () in
  let n = max 0 config.n in
  let chunk = 50 in
  let rec go acc start =
    if start >= n then List.concat (List.rev acc)
    else begin
      let len = min chunk (n - start) in
      let batch = List.init len (fun i -> start + i) in
      let rs = Harness.Pool.map ?jobs (fun i -> check_one config ~index:i) batch in
      (match progress with
      | Some f -> f ~done_:(start + len) ~total:n
      | None -> ());
      go (rs :: acc) (start + len)
    end
  in
  let reports = go [] 0 in
  let checks =
    List.fold_left
      (fun acc r ->
        acc + if blocked r then 0 else List.length config.levels)
      0 reports
  in
  {
    o_config = config;
    o_programs = List.length reports;
    o_checks = checks;
    o_violations = List.concat_map (fun r -> r.p_violations) reports;
    o_records = records_of_reports config reports;
    o_shapes = shapes_of_reports config reports;
    o_wall_seconds = Unix.gettimeofday () -. t0;
  }

(* --- shrinking -------------------------------------------------------- *)

let minimize ~fails prog =
  (* candidates must stay structurally valid AND ir/*-clean: instruction
     drops routinely manufacture use-before-def programs whose downstream
     oracle failures would be artifacts of the shrinking itself *)
  let healthy p =
    Ir.Prog.validate p = Ok ()
    && Lint.Diag.errors (Lint.check_prog p) = []
  in
  let rec go p =
    match
      List.find_opt
        (fun c -> healthy c && fails c)
        (Workloads.Synth.shrink_candidates p)
    with
    | Some c -> go c
    | None -> p
  in
  go prog

let fails_oracle config ~oracle prog =
  let r = check_value config ~profile:"minimize" ~index:0 ~seed:0 prog in
  List.exists (fun v -> String.equal v.v_oracle oracle) r.p_violations

(* --- reproducer dump -------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let progs_equal (a : Ir.Prog.t) (b : Ir.Prog.t) =
  String.equal a.main b.main
  && a.mem_top = b.mem_top
  && compare (List.sort compare a.mem_init) (List.sort compare b.mem_init) = 0
  && Ir.Prog.Smap.equal (fun f g -> compare f g = 0) a.funcs b.funcs

let dump_reproducer ~dir ~name prog =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".ir") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Ir.Pp.program_text prog));
  let ic = open_in path in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Ir.Parse.program bytes with
  | Error e ->
    Error (Printf.sprintf "reproducer %s does not parse back: %s" path e)
  | Ok p' ->
    if progs_equal prog p' then Ok path
    else
      Error
        (Printf.sprintf "reproducer %s parses to a different program" path)
